"""Core binary decision diagram manager.

This module implements a reduced ordered BDD (ROBDD) package from scratch:
a shared unique table, the generic ``ite`` operator, and specialised binary
operators (AND, OR, XOR) with operation caches.  Nodes are plain integers
indexing into parallel arrays; the
:class:`~repro.bdd.function.Function` wrapper offers an operator-overloaded
facade on top of this integer API.

Storage layout
--------------

All hot-path state lives in flat preallocated ``array('q')`` buffers —
no per-probe tuple or boxed-key allocation, and the same memory is
shared byte-for-byte with the optional native kernel
(:mod:`repro.bdd.native`):

* ``_level/_lo/_hi`` — parallel node arrays with explicit capacity and a
  node counter (``ctrl[NNODES]``); they grow in place by doubling.
* ``_uniq`` — the unique table as an open-addressed, linearly probed
  power-of-two slot array holding node indices (0 = empty; the
  terminals never occupy a slot).  Key comparison reads the node arrays
  directly, so the ``(level, lo, hi)`` triple never needs to fit one
  packed word.  The table grows by rehash above 75% load; every
  internal node is always live (there is no garbage collection), so a
  rehash is a straight re-seating of nodes ``2..n``.
* operation caches (``ite``/AND/OR/XOR/NOT) — bounded direct-mapped
  tables (a linear probe of length one) with in-place eviction, CUDD
  style: binary keys pack as ``f << 31 | g`` into one 64-bit word, the
  ternary ``ite`` key keeps its third operand in a parallel array.
  They start small, double deterministically at 50% occupancy up to a
  fixed cap, and every in-place overwrite counts as an eviction in
  :class:`ManagerStats`.
* quantification caches (``exists``/``forall``/``and_exists``) — *lossless*
  open-addressed tables that grow by rehash (no eviction): persistence
  across calls is what the image-computation loops rely on.

The operator cores are *iterative*: each runs an explicit work stack
instead of recursing, so chain-shaped BDDs thousands of levels deep
neither pay per-frame Python call overhead nor hit the interpreter
recursion limit.  When the native kernel is available the frames run in
C over the same buffers; the pure-Python cores below are the fallback
and mirror the C traversal order exactly, so **node numbering is
bit-identical across kernels** — determinism contracts hold no matter
which side executed.

Conventions
-----------

* Node ``0`` is the constant FALSE terminal and node ``1`` the constant
  TRUE terminal.
* Variables are integers ``0, 1, 2, ...`` in creation order, and the
  variable index *is* the level: variable 0 is at the top of every diagram.
  (Reordering is done by rebuilding into a fresh manager, see
  :func:`repro.bdd.compose.transfer`.)
* Every internal node satisfies the ROBDD invariants: ``lo != hi`` and the
  children's levels are strictly greater than the node's level.
"""

from __future__ import annotations

from array import array
from typing import FrozenSet, Iterable, Iterator, Optional, Sequence

from repro import obs as _obs

#: Pseudo-level assigned to the two terminal nodes; larger than any real
#: variable level so that terminals always sort below internal nodes.
TERMINAL_LEVEL = 1 << 30

FALSE = 0
TRUE = 1

# Hash multipliers shared with the C kernel (see _kernel.c).  Operands
# stay below 2^31, so the mixed sums stay below 2^64 and Python's exact
# integers agree with C's uint64 arithmetic without masking.
_M1 = 2654435761  # 0x9E3779B1
_M2 = 2246822519  # 0x85EBCA77
_M3 = 3266489917  # 0xC2B2AE3D

# ctrl[] slots — keep in sync with _kernel.c.
_C_NNODES = 0
_C_NODECAP = 1
_C_UNIQ_MASK = 2
_C_UNIQ_USED = 3
_C_AND_MASK = 4
_C_OR_MASK = 5
_C_XOR_MASK = 6
_C_NOT_MASK = 7
_C_ITE_MASK = 8
_C_AND_USED = 9
_C_OR_USED = 10
_C_XOR_USED = 11
_C_NOT_USED = 12
_C_ITE_USED = 13
_CTRL_SLOTS = 14

# stats[] slots — keep in sync with _kernel.c.
_S_ITE_HIT = 0
_S_ITE_MISS = 1
_S_AND_HIT = 2
_S_AND_MISS = 3
_S_OR_HIT = 4
_S_OR_MISS = 5
_S_XOR_HIT = 6
_S_XOR_MISS = 7
_S_NOT_HIT = 8
_S_NOT_MISS = 9
_S_EX_HIT = 10
_S_EX_MISS = 11
_S_FA_HIT = 12
_S_FA_MISS = 13
_S_AE_HIT = 14
_S_AE_MISS = 15
_S_INSERTS = 16
_S_CLEARS = 17
_S_EVICTED = 18
_N_STATS = 19

#: Initial node-array capacity (entries).
_NODE_INIT = 1 << 8
#: Initial unique-table slot count; grows by rehash above 75% load.
_UNIQUE_INIT = 1 << 9
#: Initial / maximum direct-mapped op-cache slot counts.  Caches double
#: deterministically at 50% occupancy until the cap, then evict in place.
_OPCACHE_INIT = 1 << 8
_OPCACHE_MAX = 1 << 16
#: Initial quantification-cache slot count (grows by rehash, lossless).
_QCACHE_INIT = 1 << 8


class VarCube:
    """An interned set of quantification variables.

    Quantification results are cached at the manager level under
    ``(node, cube_id)`` keys; interning the variable set once gives every
    repeat of ``∃x f`` / ``∀x f`` a stable small integer to key on.
    Obtain instances through :meth:`BDDManager.intern_cube` — identity
    matters, do not construct these directly.
    """

    __slots__ = ("cube_id", "vars", "max_level", "levels")

    def __init__(self, cube_id: int, vars: FrozenSet[int], max_level: int) -> None:
        self.cube_id = cube_id
        self.vars = vars
        self.max_level = max_level
        #: Sorted flat copy of ``vars`` — the native quantify kernel
        #: scans this buffer for level membership.
        self.levels = array("q", sorted(vars))

    def __iter__(self) -> Iterator[int]:
        return iter(self.vars)

    def __len__(self) -> int:
        return len(self.vars)

    def __contains__(self, var: int) -> bool:
        return var in self.vars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VarCube #{self.cube_id} vars={sorted(self.vars)}>"


#: Field name -> stats-array slot, defining the public counter API.
_STAT_INDEX = {
    "ite_hits": _S_ITE_HIT,
    "ite_misses": _S_ITE_MISS,
    "and_hits": _S_AND_HIT,
    "and_misses": _S_AND_MISS,
    "or_hits": _S_OR_HIT,
    "or_misses": _S_OR_MISS,
    "xor_hits": _S_XOR_HIT,
    "xor_misses": _S_XOR_MISS,
    "not_hits": _S_NOT_HIT,
    "not_misses": _S_NOT_MISS,
    "exists_hits": _S_EX_HIT,
    "exists_misses": _S_EX_MISS,
    "forall_hits": _S_FA_HIT,
    "forall_misses": _S_FA_MISS,
    "and_exists_hits": _S_AE_HIT,
    "and_exists_misses": _S_AE_MISS,
    "inserts": _S_INSERTS,
    "cache_clears": _S_CLEARS,
    "cache_evicted": _S_EVICTED,
}


class ManagerStats:
    """Per-manager instrumentation counters.

    The raw counters live in the manager's shared ``array('q')`` stats
    buffer — the C kernel increments them for free, the Python cores
    with one array store — and this object is a *window* over that
    buffer: each named counter reads as the delta since
    :meth:`BDDManager.enable_stats` captured its baseline, preserving
    the historical "counting begins now" semantics.  ``None`` on
    untracked managers.

    Structural counters (``inserts``) are exact and kernel-independent;
    probe counters (hits/misses) can differ marginally between the
    native and pure-Python kernels because the native grow-and-restart
    protocol re-probes a partially-finished operation after a growth
    abort.  Node numbering is unaffected either way.
    """

    __slots__ = ("_arr", "_base")

    def __init__(self, arr: array, base: array) -> None:
        object.__setattr__(self, "_arr", arr)
        object.__setattr__(self, "_base", base)

    def __getattr__(self, name: str) -> int:
        try:
            index = _STAT_INDEX[name]
        except KeyError:
            raise AttributeError(name) from None
        return self._arr[index] - self._base[index]

    def __setattr__(self, name: str, value: int) -> None:
        try:
            index = _STAT_INDEX[name]
        except KeyError:
            raise AttributeError(name) from None
        self._arr[index] = value + self._base[index]

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot under the names the obs ``bdd`` family uses."""
        arr = self._arr
        base = self._base
        get = lambda i: arr[i] - base[i]  # noqa: E731 - tiny local reader
        return {
            "cache.ite.hits": get(_S_ITE_HIT),
            "cache.ite.misses": get(_S_ITE_MISS),
            "cache.and.hits": get(_S_AND_HIT),
            "cache.and.misses": get(_S_AND_MISS),
            "cache.or.hits": get(_S_OR_HIT),
            "cache.or.misses": get(_S_OR_MISS),
            "cache.xor.hits": get(_S_XOR_HIT),
            "cache.xor.misses": get(_S_XOR_MISS),
            "cache.not.hits": get(_S_NOT_HIT),
            "cache.not.misses": get(_S_NOT_MISS),
            "cache.exists.hits": get(_S_EX_HIT),
            "cache.exists.misses": get(_S_EX_MISS),
            "cache.forall.hits": get(_S_FA_HIT),
            "cache.forall.misses": get(_S_FA_MISS),
            "cache.and_exists.hits": get(_S_AE_HIT),
            "cache.and_exists.misses": get(_S_AE_MISS),
            "unique.inserts": get(_S_INSERTS),
            "cache.clears": get(_S_CLEARS),
            "cache.evicted": get(_S_EVICTED),
        }


class BDDManager:
    """A shared pool of ROBDD nodes over a common variable order.

    All functions created through one manager may be freely combined with
    each other; mixing nodes from different managers is an error (use
    :func:`repro.bdd.compose.transfer` to move functions between managers).

    Parameters
    ----------
    num_vars:
        Number of variables to pre-declare (they get default names
        ``x0, x1, ...``).  More can be added later with :meth:`new_var`.
    native:
        ``True``/``False`` forces the native C kernel on or off for this
        manager; ``None`` (the default) uses it when
        :func:`repro.bdd.native.kernel` loads.  Both kernels produce
        identical node numbering.
    auto_reorder_threshold:
        When set, :meth:`reorder_due` reports ``True`` once the manager
        has grown by this many nodes since the last
        :meth:`mark_reordered` — the growth trigger the engine's
        auto-reorder hooks poll at safe points.  ``None`` disables the
        trigger.
    """

    def __init__(
        self,
        num_vars: int = 0,
        native: Optional[bool] = None,
        auto_reorder_threshold: Optional[int] = None,
    ) -> None:
        self._ctrl = array("q", bytes(8 * _CTRL_SLOTS))
        self._stat_arr = array("q", bytes(8 * _N_STATS))
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level = array("q", bytes(8 * _NODE_INIT))
        self._lo = array("q", bytes(8 * _NODE_INIT))
        self._hi = array("q", bytes(8 * _NODE_INIT))
        self._level[0] = TERMINAL_LEVEL
        self._level[1] = TERMINAL_LEVEL
        self._hi[1] = 1
        self._lo[1] = 1
        self._ctrl[_C_NNODES] = 2
        self._ctrl[_C_NODECAP] = _NODE_INIT
        self._uniq = array("q", bytes(8 * _UNIQUE_INIT))
        self._ctrl[_C_UNIQ_MASK] = _UNIQUE_INIT - 1
        # Operation caches are allocated lazily on the first operator
        # call — transfer-only managers (reordering cost probes) never
        # pay for them.
        self._and_k = self._and_v = None
        self._or_k = self._or_v = None
        self._xor_k = self._xor_v = None
        self._not_k = self._not_v = None
        self._ite_ka = self._ite_kb = self._ite_v = None
        # Persistent quantification caches, keyed by (node, cube_id) —
        # see repro.bdd.quantify.  Interned cubes live for the manager's
        # lifetime (bounded by the number of distinct variable sets).
        self._ex_k = self._ex_v = None
        self._fa_k = self._fa_v = None
        self._ae_k1 = self._ae_k2 = self._ae_v = None
        self._ex_mask = self._fa_mask = self._ae_mask = 0
        self._ex_used = self._fa_used = self._ae_used = 0
        self._cube_table: dict[FrozenSet[int], VarCube] = {}
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._stats: Optional[ManagerStats] = None
        # Native kernel wiring: cached cffi pointers into the arrays,
        # dropped whenever a buffer is replaced or resized.
        self._ffi = None
        self._lib = None
        self._bufs = None
        self._buf_keep = None
        if native is not False:
            from repro.bdd import native as _native

            handle = _native.kernel()
            if handle is not None:
                self._ffi, self._lib = handle
            elif native is True:
                raise RuntimeError(
                    "native=True but the native BDD kernel is unavailable"
                )
        # Auto-reorder growth trigger (polled by engine/reach hooks).
        self.auto_reorder_threshold = auto_reorder_threshold
        self.reorders = 0
        self._last_reorder_nodes = 2
        if _obs.enabled():
            self.enable_stats()
        for _ in range(num_vars):
            self.new_var()

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Optional[ManagerStats]:
        """Cache/unique-table counters, or ``None`` when untracked."""
        return self._stats

    def enable_stats(self) -> ManagerStats:
        """Start tracking operation statistics on this manager (counting
        begins now; managers built while ``repro.obs`` is enabled track
        from birth automatically)."""
        if self._stats is None:
            self._stats = ManagerStats(self._stat_arr, array("q", self._stat_arr))
            _obs.track_bdd_manager(self)
        return self._stats

    @property
    def native(self) -> bool:
        """True when this manager's operator cores run in the C kernel."""
        return self._lib is not None

    @property
    def unique_size(self) -> int:
        """Number of unique-table entries (internal nodes)."""
        return self._ctrl[_C_UNIQ_USED]

    def cache_sizes(self) -> dict[str, int]:
        """Current entry counts of the operation and quantification
        caches (see :meth:`table_metrics` for occupancy *and* capacity)."""
        ctrl = self._ctrl
        return {
            "ite": ctrl[_C_ITE_USED],
            "and": ctrl[_C_AND_USED],
            "or": ctrl[_C_OR_USED],
            "xor": ctrl[_C_XOR_USED],
            "not": ctrl[_C_NOT_USED],
            "exists": self._ex_used,
            "forall": self._fa_used,
            "and_exists": self._ae_used,
        }

    def cache_capacities(self) -> dict[str, int]:
        """Allocated slot counts per cache (0 while lazily unallocated)."""
        ctrl = self._ctrl
        return {
            "ite": ctrl[_C_ITE_MASK] + 1 if self._ite_ka is not None else 0,
            "and": ctrl[_C_AND_MASK] + 1 if self._and_k is not None else 0,
            "or": ctrl[_C_OR_MASK] + 1 if self._or_k is not None else 0,
            "xor": ctrl[_C_XOR_MASK] + 1 if self._xor_k is not None else 0,
            "not": ctrl[_C_NOT_MASK] + 1 if self._not_k is not None else 0,
            "exists": self._ex_mask + 1 if self._ex_k is not None else 0,
            "forall": self._fa_mask + 1 if self._fa_k is not None else 0,
            "and_exists": self._ae_mask + 1 if self._ae_k1 is not None else 0,
        }

    def unique_load_factor(self) -> float:
        """Unique-table occupancy fraction (entries / slots)."""
        return self._ctrl[_C_UNIQ_USED] / (self._ctrl[_C_UNIQ_MASK] + 1)

    def table_metrics(self) -> dict[str, dict[str, float]]:
        """Per-table pressure gauges: occupancy, capacity, and load
        factor for the unique table and every cache — the detail view
        behind the RuntimeMonitor heartbeat and ``repro trace``
        summaries."""
        metrics: dict[str, dict[str, float]] = {
            "unique": {
                "used": self._ctrl[_C_UNIQ_USED],
                "capacity": self._ctrl[_C_UNIQ_MASK] + 1,
                "load": round(self.unique_load_factor(), 4),
            }
        }
        capacities = self.cache_capacities()
        for name, used in self.cache_sizes().items():
            capacity = capacities[name]
            metrics[f"cache.{name}"] = {
                "used": used,
                "capacity": capacity,
                "load": round(used / capacity, 4) if capacity else 0.0,
            }
        return metrics

    def monitor_sample(self) -> dict[str, int]:
        """Cheap structural gauges for the runtime monitor: node/unique
        counts, summed cache entries/capacity, and the unique-table load
        factor.  Reads only scalar counters, so it is safe to call from
        a sampler thread while operator cores are running."""
        ctrl = self._ctrl
        cache_entries = (
            ctrl[_C_ITE_USED]
            + ctrl[_C_AND_USED]
            + ctrl[_C_OR_USED]
            + ctrl[_C_XOR_USED]
            + ctrl[_C_NOT_USED]
            + self._ex_used
            + self._fa_used
            + self._ae_used
        )
        capacity = 0
        if self._and_k is not None:
            capacity += (
                (ctrl[_C_AND_MASK] + 1)
                + (ctrl[_C_OR_MASK] + 1)
                + (ctrl[_C_XOR_MASK] + 1)
                + (ctrl[_C_NOT_MASK] + 1)
                + (ctrl[_C_ITE_MASK] + 1)
            )
        if self._ex_k is not None:
            capacity += (self._ex_mask + 1) + (self._fa_mask + 1)
        if self._ae_k1 is not None:
            capacity += self._ae_mask + 1
        unique_capacity = ctrl[_C_UNIQ_MASK] + 1
        return {
            "nodes": ctrl[_C_NNODES],
            "unique": ctrl[_C_UNIQ_USED],
            "cache_entries": cache_entries,
            "vars": self.num_vars,
            "unique_capacity": unique_capacity,
            "unique_load": round(ctrl[_C_UNIQ_USED] / unique_capacity, 4),
            "cache_capacity": capacity,
        }

    def stats_snapshot(self) -> dict[str, int]:
        """Point-in-time statistics: structure gauges plus (when tracked)
        the operation counters."""
        snapshot = {
            "num_vars": self.num_vars,
            "num_nodes": self.num_nodes,
            "unique_size": self.unique_size,
            **{
                f"cache.{name}.size": size
                for name, size in self.cache_sizes().items()
            },
        }
        if self._stats is not None:
            snapshot.update(self._stats.as_dict())
        return snapshot

    # ------------------------------------------------------------------
    # Auto-reorder growth trigger
    # ------------------------------------------------------------------

    def reorder_due(self) -> bool:
        """True when the node count has grown past the configured
        threshold since the last :meth:`mark_reordered` — the signal the
        engine's pass-boundary and reach-iteration hooks poll."""
        threshold = self.auto_reorder_threshold
        if threshold is None:
            return False
        return self._ctrl[_C_NNODES] - self._last_reorder_nodes >= threshold

    def mark_reordered(self) -> None:
        """Reset the growth trigger (called after a reorder/compaction
        rebuilt the working set, on the manager that carries on)."""
        self._last_reorder_nodes = self._ctrl[_C_NNODES]

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Declare a fresh variable (appended at the bottom of the order).

        Returns the variable index.  Raises ``ValueError`` on a duplicate
        name.
        """
        index = len(self._var_names)
        if name is None:
            name = f"x{index}"
        if name in self._name_to_var:
            raise ValueError(f"duplicate variable name: {name!r}")
        self._var_names.append(name)
        self._name_to_var[name] = index
        return index

    def new_vars(self, count: int, prefix: str = "x") -> list[int]:
        """Declare ``count`` fresh variables named ``{prefix}{i}``."""
        start = len(self._var_names)
        return [self.new_var(f"{prefix}{start + i}") for i in range(count)]

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        """Variable index for ``name``; raises ``KeyError`` if unknown."""
        return self._name_to_var[name]

    def var(self, var: int) -> int:
        """Node for the positive literal of variable ``var``."""
        if var >= len(self._var_names):
            raise ValueError(f"variable {var} not declared")
        return self._mk(var, FALSE, TRUE)

    def nvar(self, var: int) -> int:
        """Node for the negative literal of variable ``var``."""
        if var >= len(self._var_names):
            raise ValueError(f"variable {var} not declared")
        return self._mk(var, TRUE, FALSE)

    def literal(self, var: int, positive: bool) -> int:
        """Node for the literal of ``var`` with the given polarity."""
        return self.var(var) if positive else self.nvar(var)

    # ------------------------------------------------------------------
    # Quantification cubes
    # ------------------------------------------------------------------

    def intern_cube(self, variables: "Iterable[int] | VarCube") -> VarCube:
        """Intern a set of variables as a :class:`VarCube`.

        The same variable set always maps to the same cube object (and
        ``cube_id``), which is what makes the persistent quantification
        caches shareable across calls.  Passing an existing cube returns
        it unchanged.
        """
        if isinstance(variables, VarCube):
            return variables
        key = frozenset(variables)
        cube = self._cube_table.get(key)
        if cube is None:
            cube = VarCube(len(self._cube_table), key, max(key) if key else -1)
            self._cube_table[key] = cube
        return cube

    # ------------------------------------------------------------------
    # Node structure access
    # ------------------------------------------------------------------

    def level(self, node: int) -> int:
        """Level (== variable index) of ``node``; terminals report a
        sentinel larger than any variable level."""
        return self._level[node]

    def top_var(self, node: int) -> int:
        """Top variable of a non-terminal ``node``."""
        lvl = self._level[node]
        if lvl == TERMINAL_LEVEL:
            raise ValueError("terminal node has no top variable")
        return lvl

    def lo(self, node: int) -> int:
        """Low (else) child of ``node``."""
        return self._lo[node]

    def hi(self, node: int) -> int:
        """High (then) child of ``node``."""
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes 0 and 1."""
        return node <= 1

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return self._ctrl[_C_NNODES]

    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)``: the linear-probe
        unique-table lookup that enforces canonicity.  The operator cores
        (C and Python alike) inline this logic; out-of-line callers
        (builders, compose, quantify) use this method."""
        if lo == hi:
            return lo
        ctrl = self._ctrl
        uniq = self._uniq
        mask = ctrl[_C_UNIQ_MASK]
        la = self._level
        loa = self._lo
        ha = self._hi
        slot = (level * _M1 + lo * _M2 + hi * _M3) & mask
        while True:
            node = uniq[slot]
            if node == 0:
                break
            if la[node] == level and loa[node] == lo and ha[node] == hi:
                return node
            slot = (slot + 1) & mask
        if (ctrl[_C_UNIQ_USED] + 1) * 4 > (mask + 1) * 3:
            self._grow_unique()
            return self._mk(level, lo, hi)
        n = ctrl[_C_NNODES]
        if n >= ctrl[_C_NODECAP]:
            self._grow_nodes()
        la[n] = level
        loa[n] = lo
        ha[n] = hi
        uniq[slot] = n
        ctrl[_C_NNODES] = n + 1
        ctrl[_C_UNIQ_USED] += 1
        self._stat_arr[_S_INSERTS] += 1
        return n

    # ------------------------------------------------------------------
    # Storage growth
    # ------------------------------------------------------------------

    def _drop_bufs(self) -> None:
        """Release the cached cffi views so the arrays are free to
        resize (an ``array`` with an exported buffer refuses to grow)."""
        self._bufs = None
        self._buf_keep = None

    def _grow_nodes(self) -> None:
        """Double the node arrays in place (same objects, so bound
        locals in running cores stay valid)."""
        self._drop_bufs()
        zeros = bytes(8 * len(self._level))
        self._level.frombytes(zeros)
        self._lo.frombytes(zeros)
        self._hi.frombytes(zeros)
        self._ctrl[_C_NODECAP] = len(self._level)

    def _grow_unique(self) -> None:
        """Double the unique table and re-seat every live node (all
        internal nodes are always live, so this is a straight rehash)."""
        self._drop_bufs()
        new_cap = 2 * (self._ctrl[_C_UNIQ_MASK] + 1)
        slots = array("q", bytes(8 * new_cap))
        mask = new_cap - 1
        if self._lib is not None:
            ffi = self._ffi
            raws = [
                ffi.from_buffer(arr)
                for arr in (self._ctrl, self._level, self._lo, self._hi, slots)
            ]
            self._lib.bdd_rehash_unique(
                *(ffi.cast("int64_t *", raw) for raw in raws), mask
            )
            del raws
        else:
            la = self._level
            loa = self._lo
            ha = self._hi
            for node in range(2, self._ctrl[_C_NNODES]):
                slot = (la[node] * _M1 + loa[node] * _M2 + ha[node] * _M3) & mask
                while slots[slot] != 0:
                    slot = (slot + 1) & mask
                slots[slot] = node
            self._ctrl[_C_UNIQ_MASK] = mask
        self._uniq = slots
        self._ctrl[_C_UNIQ_MASK] = mask

    def _alloc_op_caches(self) -> None:
        ctrl = self._ctrl
        zeros = bytes(8 * _OPCACHE_INIT)
        self._and_k = array("q", zeros)
        self._and_v = array("q", zeros)
        self._or_k = array("q", zeros)
        self._or_v = array("q", zeros)
        self._xor_k = array("q", zeros)
        self._xor_v = array("q", zeros)
        self._not_k = array("q", zeros)
        self._not_v = array("q", zeros)
        self._ite_ka = array("q", zeros)
        self._ite_kb = array("q", zeros)
        self._ite_v = array("q", zeros)
        mask = _OPCACHE_INIT - 1
        for index in (_C_AND_MASK, _C_OR_MASK, _C_XOR_MASK, _C_NOT_MASK,
                      _C_ITE_MASK):
            ctrl[index] = mask
        for index in (_C_AND_USED, _C_OR_USED, _C_XOR_USED, _C_NOT_USED,
                      _C_ITE_USED):
            ctrl[index] = 0
        self._drop_bufs()

    def _grow_binary_cache(self, which: str) -> None:
        """Double one direct-mapped single-key cache and re-seat its
        entries (collisions under the new mask overwrite and count as
        evictions, keeping the counters truthful)."""
        ctrl = self._ctrl
        mask_idx, used_idx = {
            "and": (_C_AND_MASK, _C_AND_USED),
            "or": (_C_OR_MASK, _C_OR_USED),
            "xor": (_C_XOR_MASK, _C_XOR_USED),
            "not": (_C_NOT_MASK, _C_NOT_USED),
        }[which]
        old_k = getattr(self, f"_{which}_k")
        old_v = getattr(self, f"_{which}_v")
        new_cap = 2 * (ctrl[mask_idx] + 1)
        mask = new_cap - 1
        new_k = array("q", bytes(8 * new_cap))
        new_v = array("q", bytes(8 * new_cap))
        used = 0
        evicted = 0
        if which == "not":
            for i, key in enumerate(old_k):
                if key == 0:
                    continue
                slot = (key * _M1) & mask
                if new_k[slot] == 0:
                    used += 1
                else:
                    evicted += 1
                new_k[slot] = key
                new_v[slot] = old_v[i]
        else:
            for i, key in enumerate(old_k):
                if key == 0:
                    continue
                slot = ((key >> 31) * _M1 + (key & 0x7FFFFFFF) * _M2) & mask
                if new_k[slot] == 0:
                    used += 1
                else:
                    evicted += 1
                new_k[slot] = key
                new_v[slot] = old_v[i]
        setattr(self, f"_{which}_k", new_k)
        setattr(self, f"_{which}_v", new_v)
        ctrl[mask_idx] = mask
        ctrl[used_idx] = used
        self._stat_arr[_S_EVICTED] += evicted
        self._drop_bufs()

    def _grow_ite_cache(self) -> None:
        ctrl = self._ctrl
        old_ka, old_kb, old_v = self._ite_ka, self._ite_kb, self._ite_v
        new_cap = 2 * (ctrl[_C_ITE_MASK] + 1)
        mask = new_cap - 1
        new_ka = array("q", bytes(8 * new_cap))
        new_kb = array("q", bytes(8 * new_cap))
        new_v = array("q", bytes(8 * new_cap))
        used = 0
        evicted = 0
        for i, ka in enumerate(old_ka):
            if ka == 0:
                continue
            kb = old_kb[i]
            slot = ((ka >> 31) * _M1 + (ka & 0x7FFFFFFF) * _M2 + kb * _M3) & mask
            if new_ka[slot] == 0:
                used += 1
            else:
                evicted += 1
            new_ka[slot] = ka
            new_kb[slot] = kb
            new_v[slot] = old_v[i]
        self._ite_ka, self._ite_kb, self._ite_v = new_ka, new_kb, new_v
        ctrl[_C_ITE_MASK] = mask
        ctrl[_C_ITE_USED] = used
        self._stat_arr[_S_EVICTED] += evicted
        self._drop_bufs()

    def _grow_op_cache(self, index: int) -> None:
        """Double one op cache named by its thrash code index (0=and,
        1=or, 2=xor, 3=not, 4=ite) — the mid-call escape hatch for a
        single operation that evicts more entries than the cache holds,
        where the entry-time occupancy trigger in :meth:`_prep_op` never
        gets a chance to fire (in-place overwrites do not raise ``used``).
        Without it a direct-mapped cache can thrash a big recursion into
        exponential recomputation."""
        if index == 4:
            self._grow_ite_cache()
        else:
            self._grow_binary_cache(("and", "or", "xor", "not")[index])

    def _prep_op(self) -> None:
        """Per-operation entry hook: allocate the op caches on first use
        and apply the deterministic growth policy (double at 50%
        occupancy until the cap, then evict in place).  Growth decisions
        depend only on the operation sequence for a given kernel; a
        thrashing call may additionally double its cache mid-operation
        (grow-and-restart in C, in place in Python), which never changes
        node numbering because recomputation re-derives nodes through
        the lossless unique table."""
        ctrl = self._ctrl
        if self._and_k is None:
            self._alloc_op_caches()
            return
        if ctrl[_C_AND_MASK] + 1 < _OPCACHE_MAX:
            if ctrl[_C_AND_USED] * 2 > ctrl[_C_AND_MASK]:
                self._grow_binary_cache("and")
            if ctrl[_C_OR_USED] * 2 > ctrl[_C_OR_MASK]:
                self._grow_binary_cache("or")
            if ctrl[_C_XOR_USED] * 2 > ctrl[_C_XOR_MASK]:
                self._grow_binary_cache("xor")
            if ctrl[_C_NOT_USED] * 2 > ctrl[_C_NOT_MASK]:
                self._grow_binary_cache("not")
            if ctrl[_C_ITE_USED] * 2 > ctrl[_C_ITE_MASK]:
                self._grow_ite_cache()

    # ------------------------------------------------------------------
    # Native dispatch
    # ------------------------------------------------------------------

    _BUF_ORDER = (
        "_ctrl", "_level", "_lo", "_hi", "_uniq",
        "_and_k", "_and_v", "_or_k", "_or_v", "_xor_k", "_xor_v",
        "_not_k", "_not_v", "_ite_ka", "_ite_kb", "_ite_v", "_stat_arr",
    )

    def _make_bufs(self) -> tuple:
        ffi = self._ffi
        keep = []
        ptrs = []
        for name in self._BUF_ORDER:
            raw = ffi.from_buffer(getattr(self, name))
            keep.append(raw)
            ptrs.append(ffi.cast("int64_t *", raw))
        self._buf_keep = keep
        self._bufs = tuple(ptrs)
        return self._bufs

    def _call_native(self, fn, *args: int) -> int:
        """Invoke a C core with the grow-and-restart protocol: negative
        return codes ask Python to grow a structure, then the operation
        restarts (partial results are already cached, so restarts are
        near-free and numbering-invariant)."""
        while True:
            bufs = self._bufs
            if bufs is None:
                bufs = self._make_bufs()
            result = fn(*args, *bufs)
            if result >= 0:
                return result
            if result == -1:
                self._grow_nodes()
            elif result == -2:
                self._grow_unique()
            elif result <= -6:
                self._grow_op_cache(-result - 6)
            else:
                raise MemoryError("native BDD kernel allocation failed")

    # ------------------------------------------------------------------
    # Boolean operators
    # ------------------------------------------------------------------
    #
    # Each public operator applies the terminal short-circuits, then
    # hands the general case to the C kernel when available, else to the
    # matching pure-Python core below.  The cores are post-order walks
    # driven by two explicit stacks: ``tasks`` holds tagged frames (tag
    # 0 = expand a subproblem, tag 1 = reduce with children's results),
    # ``results`` accumulates one value per finished subproblem.
    # Expanding pushes the reduce frame first, then the hi and lo
    # children, so children complete before their reduce frame pops —
    # the traversal order both kernels share.

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.

        The workhorse ternary operator; all other connectives reduce to it,
        though AND/OR/XOR have specialised fast paths below.
        """
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.negate(f)
        self._prep_op()
        if self._lib is not None:
            return self._call_native(self._lib.bdd_ite, f, g, h)
        return self._py_ite(f, g, h)

    def negate(self, f: int) -> int:
        """Complement ``~f``."""
        if f <= 1:
            return 1 - f
        self._prep_op()
        if self._lib is not None:
            return self._call_native(self._lib.bdd_negate, f)
        return self._py_negate(f)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f & g``."""
        if f == g:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f > g:
            f, g = g, f
        self._prep_op()
        if self._lib is not None:
            return self._call_native(self._lib.bdd_apply, 0, f, g)
        return self._py_apply(0, f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f | g`` (direct core — no De Morgan detour
        through two negations and an AND)."""
        if f == g:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f > g:
            f, g = g, f
        self._prep_op()
        if self._lib is not None:
            return self._call_native(self._lib.bdd_apply, 1, f, g)
        return self._py_apply(1, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or ``f ^ g``."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.negate(g)
        if g == TRUE:
            return self.negate(f)
        if f > g:
            f, g = g, f
        self._prep_op()
        if self._lib is not None:
            return self._call_native(self._lib.bdd_apply, 2, f, g)
        return self._py_apply(2, f, g)

    # -- pure-Python fallback cores ------------------------------------

    def _py_negate(self, f: int) -> int:
        sarr = self._stat_arr
        ctrl = self._ctrl
        nk = self._not_k
        nv = self._not_v
        nmask = ctrl[_C_NOT_MASK]
        slot = (f * _M1) & nmask
        if nk[slot] == f:
            sarr[_S_NOT_HIT] += 1
            return nv[slot]
        la = self._level
        loa = self._lo
        ha = self._hi
        mk = self._mk
        ev = 0
        tasks: list[tuple[int, int]] = [(0, f)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            tag, n = tasks.pop()
            if tag == 0:
                if n <= 1:
                    rpush(1 - n)
                    continue
                slot = (n * _M1) & nmask
                if nk[slot] == n:
                    sarr[_S_NOT_HIT] += 1
                    rpush(nv[slot])
                    continue
                sarr[_S_NOT_MISS] += 1
                push((1, n))
                push((0, ha[n]))
                push((0, loa[n]))
            else:
                hi = results.pop()
                node = mk(la[n], results[-1], hi)
                slot = (n * _M1) & nmask
                old = nk[slot]
                if old == 0:
                    ctrl[_C_NOT_USED] += 1
                elif old != n:
                    sarr[_S_EVICTED] += 1
                    ev += 1
                nk[slot] = n
                nv[slot] = node
                slot = (node * _M1) & nmask
                old = nk[slot]
                if old == 0:
                    ctrl[_C_NOT_USED] += 1
                elif old != node:
                    sarr[_S_EVICTED] += 1
                    ev += 1
                nk[slot] = node
                nv[slot] = n
                if ev > nmask and nmask + 1 < _OPCACHE_MAX:
                    self._grow_binary_cache("not")
                    nk, nv = self._not_k, self._not_v
                    nmask = ctrl[_C_NOT_MASK]
                    ev = 0
                results[-1] = node
        return results[0]

    def _py_apply(self, op: int, f: int, g: int) -> int:
        sarr = self._stat_arr
        ctrl = self._ctrl
        if op == 0:
            ck, cv = self._and_k, self._and_v
            cmask = ctrl[_C_AND_MASK]
            used_idx, s_hit, s_miss = _C_AND_USED, _S_AND_HIT, _S_AND_MISS
        elif op == 1:
            ck, cv = self._or_k, self._or_v
            cmask = ctrl[_C_OR_MASK]
            used_idx, s_hit, s_miss = _C_OR_USED, _S_OR_HIT, _S_OR_MISS
        else:
            ck, cv = self._xor_k, self._xor_v
            cmask = ctrl[_C_XOR_MASK]
            used_idx, s_hit, s_miss = _C_XOR_USED, _S_XOR_HIT, _S_XOR_MISS
        slot = (f * _M1 + g * _M2) & cmask
        if ck[slot] == (f << 31) | g:
            sarr[s_hit] += 1
            return cv[slot]
        la = self._level
        loa = self._lo
        ha = self._hi
        mk = self._mk
        negate = self._py_negate
        ev = 0
        tasks: list[tuple] = [(0, f, g)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                _, a, b = frame
                if op == 0:
                    if a == b:
                        rpush(a)
                        continue
                    if a == FALSE or b == FALSE:
                        rpush(FALSE)
                        continue
                    if a == TRUE:
                        rpush(b)
                        continue
                    if b == TRUE:
                        rpush(a)
                        continue
                elif op == 1:
                    if a == b:
                        rpush(a)
                        continue
                    if a == TRUE or b == TRUE:
                        rpush(TRUE)
                        continue
                    if a == FALSE:
                        rpush(b)
                        continue
                    if b == FALSE:
                        rpush(a)
                        continue
                else:
                    if a == b:
                        rpush(FALSE)
                        continue
                    if a == FALSE:
                        rpush(b)
                        continue
                    if b == FALSE:
                        rpush(a)
                        continue
                    if a == TRUE:
                        rpush(negate(b))
                        continue
                    if b == TRUE:
                        rpush(negate(a))
                        continue
                if a > b:
                    a, b = b, a
                key = (a << 31) | b
                slot = (a * _M1 + b * _M2) & cmask
                if ck[slot] == key:
                    sarr[s_hit] += 1
                    rpush(cv[slot])
                    continue
                sarr[s_miss] += 1
                la_ = la[a]
                lb_ = la[b]
                if la_ < lb_:
                    top = la_
                    a0 = loa[a]
                    a1 = ha[a]
                    b0 = b1 = b
                elif lb_ < la_:
                    top = lb_
                    a0 = a1 = a
                    b0 = loa[b]
                    b1 = ha[b]
                else:
                    top = la_
                    a0 = loa[a]
                    a1 = ha[a]
                    b0 = loa[b]
                    b1 = ha[b]
                push((1, key, top))
                push((0, a1, b1))
                push((0, a0, b0))
            else:
                _, key, top = frame
                hi = results.pop()
                lo = results[-1]
                node = lo if lo == hi else mk(top, lo, hi)
                slot = ((key >> 31) * _M1 + (key & 0x7FFFFFFF) * _M2) & cmask
                old = ck[slot]
                if old == 0:
                    ctrl[used_idx] += 1
                elif old != key:
                    sarr[_S_EVICTED] += 1
                    ev += 1
                ck[slot] = key
                cv[slot] = node
                if ev > cmask and cmask + 1 < _OPCACHE_MAX:
                    # Thrash escape: this one call has overwritten more
                    # entries than the cache holds, so grow in place
                    # (entries are re-seated) and rebind the probe locals.
                    self._grow_binary_cache(("and", "or", "xor")[op])
                    if op == 0:
                        ck, cv = self._and_k, self._and_v
                        cmask = ctrl[_C_AND_MASK]
                    elif op == 1:
                        ck, cv = self._or_k, self._or_v
                        cmask = ctrl[_C_OR_MASK]
                    else:
                        ck, cv = self._xor_k, self._xor_v
                        cmask = ctrl[_C_XOR_MASK]
                    ev = 0
                results[-1] = node
        return results[0]

    def _py_ite(self, f: int, g: int, h: int) -> int:
        sarr = self._stat_arr
        ctrl = self._ctrl
        ika, ikb, iv = self._ite_ka, self._ite_kb, self._ite_v
        imask = ctrl[_C_ITE_MASK]
        slot = (f * _M1 + g * _M2 + h * _M3) & imask
        if ika[slot] == (f << 31) | g and ikb[slot] == h:
            sarr[_S_ITE_HIT] += 1
            return iv[slot]
        la = self._level
        loa = self._lo
        ha = self._hi
        mk = self._mk
        negate = self._py_negate
        ev = 0
        tasks: list[tuple] = [(0, f, g, h)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                _, a, b, c = frame
                if a == TRUE:
                    rpush(b)
                    continue
                if a == FALSE:
                    rpush(c)
                    continue
                if b == c:
                    rpush(b)
                    continue
                if b == TRUE and c == FALSE:
                    rpush(a)
                    continue
                if b == FALSE and c == TRUE:
                    rpush(negate(a))
                    continue
                ka = (a << 31) | b
                slot = (a * _M1 + b * _M2 + c * _M3) & imask
                if ika[slot] == ka and ikb[slot] == c:
                    sarr[_S_ITE_HIT] += 1
                    rpush(iv[slot])
                    continue
                sarr[_S_ITE_MISS] += 1
                lf = la[a]
                lg = la[b]
                lh = la[c]
                top = lf
                if lg < top:
                    top = lg
                if lh < top:
                    top = lh
                if lf == top:
                    f0 = loa[a]
                    f1 = ha[a]
                else:
                    f0 = f1 = a
                if lg == top:
                    g0 = loa[b]
                    g1 = ha[b]
                else:
                    g0 = g1 = b
                if lh == top:
                    h0 = loa[c]
                    h1 = ha[c]
                else:
                    h0 = h1 = c
                push((1, ka, c, top))
                push((0, f1, g1, h1))
                push((0, f0, g0, h0))
            else:
                _, ka, kb, top = frame
                hi = results.pop()
                lo = results[-1]
                node = lo if lo == hi else mk(top, lo, hi)
                slot = ((ka >> 31) * _M1 + (ka & 0x7FFFFFFF) * _M2
                        + kb * _M3) & imask
                old = ika[slot]
                if old == 0:
                    ctrl[_C_ITE_USED] += 1
                elif old != ka or ikb[slot] != kb:
                    sarr[_S_EVICTED] += 1
                    ev += 1
                ika[slot] = ka
                ikb[slot] = kb
                iv[slot] = node
                if ev > imask and imask + 1 < _OPCACHE_MAX:
                    self._grow_ite_cache()
                    ika, ikb, iv = self._ite_ka, self._ite_kb, self._ite_v
                    imask = ctrl[_C_ITE_MASK]
                    ev = 0
                results[-1] = node
        return results[0]

    # ------------------------------------------------------------------
    # Derived connectives
    # ------------------------------------------------------------------

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``~(f ^ g)``."""
        return self.negate(self.apply_xor(f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``~f | g``."""
        return self.apply_or(self.negate(f), g)

    def leq(self, f: int, g: int) -> bool:
        """The paper's "less-than-or-equal" relation: ``f <= g`` holds iff
        ``f -> g`` is a tautology (Section 3.2.1)."""
        return self.implies(f, g) == TRUE

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of nodes (TRUE for an empty iterable)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == FALSE:
                return FALSE
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of nodes (FALSE for an empty iterable)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # Quantification-cache plumbing (used by repro.bdd.quantify)
    # ------------------------------------------------------------------

    def _ensure_quantify_caches(self) -> None:
        if self._ex_k is None:
            zeros = bytes(8 * _QCACHE_INIT)
            self._ex_k = array("q", zeros)
            self._ex_v = array("q", zeros)
            self._fa_k = array("q", zeros)
            self._fa_v = array("q", zeros)
            self._ae_k1 = array("q", zeros)
            self._ae_k2 = array("q", zeros)
            self._ae_v = array("q", zeros)
            self._ex_mask = self._fa_mask = self._ae_mask = _QCACHE_INIT - 1
            self._ex_used = self._fa_used = self._ae_used = 0

    def _grow_quantify(self, which: str) -> None:
        """Double one single-key quantification cache and re-seat every
        entry (lossless rehash — these caches never evict)."""
        karr = getattr(self, f"_{which}_k")
        varr = getattr(self, f"_{which}_v")
        new_cap = 2 * (getattr(self, f"_{which}_mask") + 1)
        mask = new_cap - 1
        new_k = array("q", bytes(8 * new_cap))
        new_v = array("q", bytes(8 * new_cap))
        for i, k in enumerate(karr):
            if k == 0:
                continue
            slot = ((k >> 31) * _M1 + (k & 0x7FFFFFFF) * _M2) & mask
            while new_k[slot] != 0:
                slot = (slot + 1) & mask
            new_k[slot] = k
            new_v[slot] = varr[i]
        setattr(self, f"_{which}_k", new_k)
        setattr(self, f"_{which}_v", new_v)
        setattr(self, f"_{which}_mask", mask)

    def _q_put(self, which: str, key: int, value: int) -> None:
        """Lossless linear-probe insert into a quantification cache,
        growing by rehash above 75% load (``key`` packs ``node << 31 |
        cube_id``; insert only on miss, so existing keys never repeat)."""
        used = getattr(self, f"_{which}_used")
        if (used + 1) * 4 > (getattr(self, f"_{which}_mask") + 1) * 3:
            self._grow_quantify(which)
        karr = getattr(self, f"_{which}_k")
        varr = getattr(self, f"_{which}_v")
        mask = getattr(self, f"_{which}_mask")
        slot = ((key >> 31) * _M1 + (key & 0x7FFFFFFF) * _M2) & mask
        while karr[slot] != 0:
            if karr[slot] == key:
                varr[slot] = value
                return
            slot = (slot + 1) & mask
        karr[slot] = key
        varr[slot] = value
        setattr(self, f"_{which}_used", used + 1)

    def _grow_ae_cache(self) -> None:
        """Double the two-word-key and_exists cache (lossless rehash)."""
        karr1, karr2, varr = self._ae_k1, self._ae_k2, self._ae_v
        new_cap = 2 * (self._ae_mask + 1)
        mask = new_cap - 1
        new_k1 = array("q", bytes(8 * new_cap))
        new_k2 = array("q", bytes(8 * new_cap))
        new_v = array("q", bytes(8 * new_cap))
        for i, k in enumerate(karr1):
            if k == 0:
                continue
            slot = ((k >> 31) * _M1 + (k & 0x7FFFFFFF) * _M2
                    + karr2[i] * _M3) & mask
            while new_k1[slot] != 0:
                slot = (slot + 1) & mask
            new_k1[slot] = k
            new_k2[slot] = karr2[i]
            new_v[slot] = varr[i]
        self._ae_k1, self._ae_k2, self._ae_v = new_k1, new_k2, new_v
        self._ae_mask = mask

    def _ae_put(self, a: int, b: int, cid: int, value: int) -> None:
        """Lossless insert into the two-word-key and_exists cache."""
        if (self._ae_used + 1) * 4 > (self._ae_mask + 1) * 3:
            self._grow_ae_cache()
        k1 = (a << 31) | b
        karr1 = self._ae_k1
        karr2 = self._ae_k2
        varr = self._ae_v
        mask = self._ae_mask
        used = self._ae_used
        slot = (a * _M1 + b * _M2 + cid * _M3) & mask
        while karr1[slot] != 0:
            if karr1[slot] == k1 and karr2[slot] == cid:
                varr[slot] = value
                return
            slot = (slot + 1) & mask
        karr1[slot] = k1
        karr2[slot] = cid
        varr[slot] = value
        self._ae_used = used + 1

    def _native_quantify(self, op: int, f: int, cube: "VarCube") -> int:
        """Run exists (op 0) / forall (op 1) in the C kernel with the
        grow-and-restart protocol extended to the quantify cache
        (code -4): the cache is lossless, so a restart after any growth
        replays cached sub-results and node numbering is unchanged."""
        which = "ex" if op == 0 else "fa"
        self._prep_op()
        ffi = self._ffi
        lib = self._lib
        meta = array("q", (0,))
        levels = cube.levels
        while True:
            bufs = self._bufs
            if bufs is None:
                bufs = self._make_bufs()
            meta[0] = getattr(self, f"_{which}_used")
            keep = (
                ffi.from_buffer(levels),
                ffi.from_buffer(getattr(self, f"_{which}_k")),
                ffi.from_buffer(getattr(self, f"_{which}_v")),
                ffi.from_buffer(meta),
            )
            result = lib.bdd_quantify(
                op, f, cube.cube_id,
                ffi.cast("int64_t *", keep[0]), len(levels),
                cube.max_level,
                ffi.cast("int64_t *", keep[1]),
                ffi.cast("int64_t *", keep[2]),
                getattr(self, f"_{which}_mask"),
                ffi.cast("int64_t *", keep[3]),
                *bufs,
            )
            setattr(self, f"_{which}_used", meta[0])
            del keep
            if result >= 0:
                return result
            if result == -1:
                self._grow_nodes()
            elif result == -2:
                self._grow_unique()
            elif result == -4:
                self._grow_quantify(which)
            elif result <= -6:
                self._grow_op_cache(-result - 6)
            else:
                raise MemoryError("native BDD kernel allocation failed")

    def _native_and_exists(self, f: int, g: int, cube: "VarCube") -> int:
        """Fused ∃cube.(f & g) in the C kernel (growth codes: -4 grows
        the exists cache it recurses into, -5 the and_exists cache)."""
        self._prep_op()
        ffi = self._ffi
        lib = self._lib
        ex_meta = array("q", (0,))
        ae_meta = array("q", (0,))
        levels = cube.levels
        while True:
            bufs = self._bufs
            if bufs is None:
                bufs = self._make_bufs()
            ex_meta[0] = self._ex_used
            ae_meta[0] = self._ae_used
            keep = (
                ffi.from_buffer(levels),
                ffi.from_buffer(self._ex_k),
                ffi.from_buffer(self._ex_v),
                ffi.from_buffer(ex_meta),
                ffi.from_buffer(self._ae_k1),
                ffi.from_buffer(self._ae_k2),
                ffi.from_buffer(self._ae_v),
                ffi.from_buffer(ae_meta),
            )
            result = lib.bdd_and_exists(
                f, g, cube.cube_id,
                ffi.cast("int64_t *", keep[0]), len(levels),
                cube.max_level,
                ffi.cast("int64_t *", keep[1]),
                ffi.cast("int64_t *", keep[2]),
                self._ex_mask,
                ffi.cast("int64_t *", keep[3]),
                ffi.cast("int64_t *", keep[4]),
                ffi.cast("int64_t *", keep[5]),
                ffi.cast("int64_t *", keep[6]),
                self._ae_mask,
                ffi.cast("int64_t *", keep[7]),
                *bufs,
            )
            self._ex_used = ex_meta[0]
            self._ae_used = ae_meta[0]
            del keep
            if result >= 0:
                return result
            if result == -1:
                self._grow_nodes()
            elif result == -2:
                self._grow_unique()
            elif result == -4:
                self._grow_quantify("ex")
            elif result == -5:
                self._grow_ae_cache()
            elif result <= -6:
                self._grow_op_cache(-result - 6)
            else:
                raise MemoryError("native BDD kernel allocation failed")

    # ------------------------------------------------------------------
    # Cofactors and evaluation
    # ------------------------------------------------------------------

    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``f`` with respect to one literal."""
        return self.restrict(f, {var: value})

    def restrict(self, f: int, assignment: dict[int, bool]) -> int:
        """Simultaneous cofactor by a partial assignment ``{var: value}``."""
        if not assignment or f <= 1:
            return f
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        mk = self._mk
        max_level = max(assignment)
        memo: dict[int, int] = {}
        # Tags: 0 expand, 1 rebuild from two children, 2 forward the
        # single (assigned-variable) child's result.
        tasks: list[tuple[int, int]] = [(0, f)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            tag, n = tasks.pop()
            if tag == 0:
                if n <= 1 or level[n] > max_level:
                    rpush(n)
                    continue
                hit = memo.get(n)
                if hit is not None:
                    rpush(hit)
                    continue
                lvl = level[n]
                if lvl in assignment:
                    push((2, n))
                    push((0, hi_arr[n] if assignment[lvl] else lo_arr[n]))
                else:
                    push((1, n))
                    push((0, hi_arr[n]))
                    push((0, lo_arr[n]))
            elif tag == 1:
                hi = results.pop()
                lo = results[-1]
                node = lo if lo == hi else mk(level[n], lo, hi)
                memo[n] = node
                results[-1] = node
            else:
                memo[n] = results[-1]
        return results[0]

    def evaluate(self, f: int, assignment: Sequence[bool] | dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment.

        ``assignment`` is either a sequence indexed by variable or a dict;
        variables not on ``f``'s path are ignored.  Raises ``ValueError``
        when a variable on the evaluation path has no assigned value.
        """
        node = f
        while node > 1:
            level = self._level[node]
            try:
                value = assignment[level]
            except (KeyError, IndexError):
                raise ValueError(
                    f"assignment is missing variable "
                    f"{self._var_names[level]!r} (index {level}), which lies "
                    f"on the evaluation path"
                ) from None
            node = self._hi[node] if value else self._lo[node]
        return node == TRUE

    def cube(self, literals: dict[int, bool]) -> int:
        """Conjunction of literals given as ``{var: polarity}``."""
        node = TRUE
        for var in sorted(literals, reverse=True):
            node = self._mk(
                var,
                FALSE if literals[var] else node,
                node if literals[var] else FALSE,
            )
        return node

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear_caches(self) -> int:
        """Drop all operation caches, including the persistent
        quantification caches (the unique table and the interned cube
        table are kept — the latter is bounded by the number of distinct
        variable sets ever quantified).

        The array-backed caches are released wholesale and reallocated
        lazily at their initial size, so no stale probe chain can ever
        survive a clear.  Useful between phases of a long-running
        computation to bound memory; correctness is unaffected.  Returns
        the number of evicted cache entries and, on instrumented
        managers, emits a ``bdd.clear_caches`` obs event so mid-run
        evictions are visible in reports.
        """
        ctrl = self._ctrl
        evicted = (
            ctrl[_C_ITE_USED]
            + ctrl[_C_AND_USED]
            + ctrl[_C_OR_USED]
            + ctrl[_C_XOR_USED]
            + ctrl[_C_NOT_USED]
            + self._ex_used
            + self._fa_used
            + self._ae_used
        )
        self._and_k = self._and_v = None
        self._or_k = self._or_v = None
        self._xor_k = self._xor_v = None
        self._not_k = self._not_v = None
        self._ite_ka = self._ite_kb = self._ite_v = None
        for index in (_C_AND_MASK, _C_OR_MASK, _C_XOR_MASK, _C_NOT_MASK,
                      _C_ITE_MASK, _C_AND_USED, _C_OR_USED, _C_XOR_USED,
                      _C_NOT_USED, _C_ITE_USED):
            ctrl[index] = 0
        self._ex_k = self._ex_v = None
        self._fa_k = self._fa_v = None
        self._ae_k1 = self._ae_k2 = self._ae_v = None
        self._ex_mask = self._fa_mask = self._ae_mask = 0
        self._ex_used = self._fa_used = self._ae_used = 0
        self._drop_bufs()
        self._stat_arr[_S_CLEARS] += 1
        self._stat_arr[_S_EVICTED] += evicted
        if self._stats is not None:
            _obs.event(
                "bdd.clear_caches",
                evicted=evicted,
                unique=ctrl[_C_UNIQ_USED],
            )
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BDDManager vars={self.num_vars} nodes={self.num_nodes} "
            f"unique={self.unique_size} native={self.native}>"
        )


def iter_nodes(manager: BDDManager, root: int) -> Iterator[int]:
    """Yield every node reachable from ``root`` exactly once (terminals
    included), children before parents (iterative postorder)."""
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded or node <= 1:
            seen.add(node)
            yield node
            continue
        stack.append((node, True))
        stack.append((manager.hi(node), False))
        stack.append((manager.lo(node), False))
