"""Core binary decision diagram manager.

This module implements a reduced ordered BDD (ROBDD) package from scratch:
a shared unique table, the generic ``ite`` operator, and specialised binary
operators (AND, OR, XOR) with operation caches.  Nodes are plain integers
indexing into parallel arrays, which keeps the inner recursion cheap; the
:class:`~repro.bdd.function.Function` wrapper offers an operator-overloaded
facade on top of this integer API.

Conventions
-----------

* Node ``0`` is the constant FALSE terminal and node ``1`` the constant
  TRUE terminal.
* Variables are integers ``0, 1, 2, ...`` in creation order, and the
  variable index *is* the level: variable 0 is at the top of every diagram.
  (Reordering is done by rebuilding into a fresh manager, see
  :func:`repro.bdd.compose.transfer`.)
* Every internal node satisfies the ROBDD invariants: ``lo != hi`` and the
  children's levels are strictly greater than the node's level.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro import obs as _obs

#: Pseudo-level assigned to the two terminal nodes; larger than any real
#: variable level so that terminals always sort below internal nodes.
TERMINAL_LEVEL = 1 << 30

FALSE = 0
TRUE = 1


class ManagerStats:
    """Local per-manager instrumentation counters.

    Kept as plain slotted integers (not :mod:`repro.obs` calls) because
    the operator recursions are the hottest code in the package; the obs
    registry aggregates these objects at report time instead.  ``None``
    on uninstrumented managers, so the per-operation cost while disabled
    is a single attribute check.
    """

    __slots__ = (
        "ite_hits",
        "ite_misses",
        "and_hits",
        "and_misses",
        "xor_hits",
        "xor_misses",
        "not_hits",
        "not_misses",
        "inserts",
        "cache_clears",
        "cache_evicted",
    )

    def __init__(self) -> None:
        for slot in self.__slots__:
            setattr(self, slot, 0)

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot under the names the obs ``bdd`` family uses."""
        return {
            "cache.ite.hits": self.ite_hits,
            "cache.ite.misses": self.ite_misses,
            "cache.and.hits": self.and_hits,
            "cache.and.misses": self.and_misses,
            "cache.xor.hits": self.xor_hits,
            "cache.xor.misses": self.xor_misses,
            "cache.not.hits": self.not_hits,
            "cache.not.misses": self.not_misses,
            "unique.inserts": self.inserts,
            "cache.clears": self.cache_clears,
            "cache.evicted": self.cache_evicted,
        }


class BDDManager:
    """A shared pool of ROBDD nodes over a common variable order.

    All functions created through one manager may be freely combined with
    each other; mixing nodes from different managers is an error (use
    :func:`repro.bdd.compose.transfer` to move functions between managers).

    Parameters
    ----------
    num_vars:
        Number of variables to pre-declare (they get default names
        ``x0, x1, ...``).  More can be added later with :meth:`new_var`.
    """

    def __init__(self, num_vars: int = 0) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._lo = [0, 1]
        self._hi = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._and_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._stats: Optional[ManagerStats] = None
        if _obs.enabled():
            self.enable_stats()
        for _ in range(num_vars):
            self.new_var()

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Optional[ManagerStats]:
        """Cache/unique-table counters, or ``None`` when untracked."""
        return self._stats

    def enable_stats(self) -> ManagerStats:
        """Start tracking operation statistics on this manager (counting
        begins now; managers built while ``repro.obs`` is enabled track
        from birth automatically)."""
        if self._stats is None:
            self._stats = ManagerStats()
            _obs.track_bdd_manager(self)
        return self._stats

    @property
    def unique_size(self) -> int:
        """Number of unique-table entries (internal nodes)."""
        return len(self._unique)

    def cache_sizes(self) -> dict[str, int]:
        """Current entry counts of the four operation caches."""
        return {
            "ite": len(self._ite_cache),
            "and": len(self._and_cache),
            "xor": len(self._xor_cache),
            "not": len(self._not_cache),
        }

    def stats_snapshot(self) -> dict[str, int]:
        """Point-in-time statistics: structure gauges plus (when tracked)
        the operation counters."""
        snapshot = {
            "num_vars": self.num_vars,
            "num_nodes": self.num_nodes,
            "unique_size": self.unique_size,
            **{
                f"cache.{name}.size": size
                for name, size in self.cache_sizes().items()
            },
        }
        if self._stats is not None:
            snapshot.update(self._stats.as_dict())
        return snapshot

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Declare a fresh variable (appended at the bottom of the order).

        Returns the variable index.  Raises ``ValueError`` on a duplicate
        name.
        """
        index = len(self._var_names)
        if name is None:
            name = f"x{index}"
        if name in self._name_to_var:
            raise ValueError(f"duplicate variable name: {name!r}")
        self._var_names.append(name)
        self._name_to_var[name] = index
        return index

    def new_vars(self, count: int, prefix: str = "x") -> list[int]:
        """Declare ``count`` fresh variables named ``{prefix}{i}``."""
        start = len(self._var_names)
        return [self.new_var(f"{prefix}{start + i}") for i in range(count)]

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        """Variable index for ``name``; raises ``KeyError`` if unknown."""
        return self._name_to_var[name]

    def var(self, var: int) -> int:
        """Node for the positive literal of variable ``var``."""
        if var >= len(self._var_names):
            raise ValueError(f"variable {var} not declared")
        return self._mk(var, FALSE, TRUE)

    def nvar(self, var: int) -> int:
        """Node for the negative literal of variable ``var``."""
        if var >= len(self._var_names):
            raise ValueError(f"variable {var} not declared")
        return self._mk(var, TRUE, FALSE)

    def literal(self, var: int, positive: bool) -> int:
        """Node for the literal of ``var`` with the given polarity."""
        return self.var(var) if positive else self.nvar(var)

    # ------------------------------------------------------------------
    # Node structure access
    # ------------------------------------------------------------------

    def level(self, node: int) -> int:
        """Level (== variable index) of ``node``; terminals report a
        sentinel larger than any variable level."""
        return self._level[node]

    def top_var(self, node: int) -> int:
        """Top variable of a non-terminal ``node``."""
        lvl = self._level[node]
        if lvl == TERMINAL_LEVEL:
            raise ValueError("terminal node has no top variable")
        return lvl

    def lo(self, node: int) -> int:
        """Low (else) child of ``node``."""
        return self._lo[node]

    def hi(self, node: int) -> int:
        """High (then) child of ``node``."""
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes 0 and 1."""
        return node <= 1

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._level)

    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)`` (the unique-table
        lookup that enforces canonicity)."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
            if self._stats is not None:
                self._stats.inserts += 1
        return node

    # ------------------------------------------------------------------
    # Boolean operators
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.

        The workhorse ternary operator; all other connectives reduce to it,
        though AND/OR/XOR have specialised fast paths below.
        """
        # Terminal short-circuits.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.negate(f)
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            if self._stats is not None:
                self._stats.ite_hits += 1
            return cached
        if self._stats is not None:
            self._stats.ite_misses += 1
        level_f = self._level[f]
        level_g = self._level[g]
        level_h = self._level[h]
        top = min(level_f, level_g, level_h)
        f0, f1 = (self._lo[f], self._hi[f]) if level_f == top else (f, f)
        g0, g1 = (self._lo[g], self._hi[g]) if level_g == top else (g, g)
        h0, h1 = (self._lo[h], self._hi[h]) if level_h == top else (h, h)
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        result = self._mk(top, lo, hi)
        self._ite_cache[key] = result
        return result

    def negate(self, f: int) -> int:
        """Complement ``~f``."""
        if f <= 1:
            return 1 - f
        cached = self._not_cache.get(f)
        if cached is not None:
            if self._stats is not None:
                self._stats.not_hits += 1
            return cached
        if self._stats is not None:
            self._stats.not_misses += 1
        result = self._mk(
            self._level[f], self.negate(self._lo[f]), self.negate(self._hi[f])
        )
        self._not_cache[f] = result
        self._not_cache[result] = f
        return result

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f & g``."""
        if f == g:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._and_cache.get(key)
        if cached is not None:
            if self._stats is not None:
                self._stats.and_hits += 1
            return cached
        if self._stats is not None:
            self._stats.and_misses += 1
        level_f = self._level[f]
        level_g = self._level[g]
        top = min(level_f, level_g)
        f0, f1 = (self._lo[f], self._hi[f]) if level_f == top else (f, f)
        g0, g1 = (self._lo[g], self._hi[g]) if level_g == top else (g, g)
        result = self._mk(top, self.apply_and(f0, g0), self.apply_and(f1, g1))
        self._and_cache[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f | g`` (via De Morgan on the AND fast path)."""
        return self.negate(self.apply_and(self.negate(f), self.negate(g)))

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or ``f ^ g``."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.negate(g)
        if g == TRUE:
            return self.negate(f)
        if f > g:
            f, g = g, f
        key = (f, g)
        cached = self._xor_cache.get(key)
        if cached is not None:
            if self._stats is not None:
                self._stats.xor_hits += 1
            return cached
        if self._stats is not None:
            self._stats.xor_misses += 1
        level_f = self._level[f]
        level_g = self._level[g]
        top = min(level_f, level_g)
        f0, f1 = (self._lo[f], self._hi[f]) if level_f == top else (f, f)
        g0, g1 = (self._lo[g], self._hi[g]) if level_g == top else (g, g)
        result = self._mk(top, self.apply_xor(f0, g0), self.apply_xor(f1, g1))
        self._xor_cache[key] = result
        return result

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``~(f ^ g)``."""
        return self.negate(self.apply_xor(f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``~f | g``."""
        return self.apply_or(self.negate(f), g)

    def leq(self, f: int, g: int) -> bool:
        """The paper's "less-than-or-equal" relation: ``f <= g`` holds iff
        ``f -> g`` is a tautology (Section 3.2.1)."""
        return self.implies(f, g) == TRUE

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of nodes (TRUE for an empty iterable)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == FALSE:
                return FALSE
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of nodes (FALSE for an empty iterable)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # Cofactors and evaluation
    # ------------------------------------------------------------------

    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``f`` with respect to one literal."""
        return self.restrict(f, {var: value})

    def restrict(self, f: int, assignment: dict[int, bool]) -> int:
        """Simultaneous cofactor by a partial assignment ``{var: value}``."""
        if not assignment:
            return f
        cache: dict[int, int] = {}
        max_level = max(assignment)

        def walk(node: int) -> int:
            if node <= 1 or self._level[node] > max_level:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            level = self._level[node]
            if level in assignment:
                result = walk(self._hi[node] if assignment[level] else self._lo[node])
            else:
                result = self._mk(level, walk(self._lo[node]), walk(self._hi[node]))
            cache[node] = result
            return result

        return walk(f)

    def evaluate(self, f: int, assignment: Sequence[bool] | dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment.

        ``assignment`` is either a sequence indexed by variable or a dict;
        variables not on ``f``'s path are ignored.
        """
        node = f
        while node > 1:
            level = self._level[node]
            value = assignment[level]
            node = self._hi[node] if value else self._lo[node]
        return node == TRUE

    def cube(self, literals: dict[int, bool]) -> int:
        """Conjunction of literals given as ``{var: polarity}``."""
        node = TRUE
        for var in sorted(literals, reverse=True):
            node = self._mk(
                var,
                FALSE if literals[var] else node,
                node if literals[var] else FALSE,
            )
        return node

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear_caches(self) -> int:
        """Drop all operation caches (the unique table is kept).

        Useful between phases of a long-running computation to bound
        memory; correctness is unaffected.  Returns the number of evicted
        cache entries and, on instrumented managers, emits a
        ``bdd.clear_caches`` obs event so mid-run evictions are visible
        in reports.
        """
        evicted = (
            len(self._ite_cache)
            + len(self._and_cache)
            + len(self._xor_cache)
            + len(self._not_cache)
        )
        self._ite_cache.clear()
        self._and_cache.clear()
        self._xor_cache.clear()
        self._not_cache.clear()
        if self._stats is not None:
            self._stats.cache_clears += 1
            self._stats.cache_evicted += evicted
            _obs.event(
                "bdd.clear_caches",
                evicted=evicted,
                unique=len(self._unique),
            )
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BDDManager vars={self.num_vars} nodes={self.num_nodes} "
            f"unique={len(self._unique)}>"
        )


def iter_nodes(manager: BDDManager, root: int) -> Iterator[int]:
    """Yield every node reachable from ``root`` exactly once (terminals
    included), children before parents (iterative postorder)."""
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded or node <= 1:
            seen.add(node)
            yield node
            continue
        stack.append((node, True))
        stack.append((manager.hi(node), False))
        stack.append((manager.lo(node), False))
