"""Core binary decision diagram manager.

This module implements a reduced ordered BDD (ROBDD) package from scratch:
a shared unique table, the generic ``ite`` operator, and specialised binary
operators (AND, OR, XOR) with operation caches.  Nodes are plain integers
indexing into parallel arrays; the
:class:`~repro.bdd.function.Function` wrapper offers an operator-overloaded
facade on top of this integer API.

The operator cores are *iterative*: each runs an explicit work stack
instead of recursing, so chain-shaped BDDs thousands of levels deep
neither pay per-frame Python call overhead nor hit the interpreter
recursion limit.  Hot loops bind the node arrays and caches to locals
and inline the unique-table lookup (`_mk`) into the reduce step.

Conventions
-----------

* Node ``0`` is the constant FALSE terminal and node ``1`` the constant
  TRUE terminal.
* Variables are integers ``0, 1, 2, ...`` in creation order, and the
  variable index *is* the level: variable 0 is at the top of every diagram.
  (Reordering is done by rebuilding into a fresh manager, see
  :func:`repro.bdd.compose.transfer`.)
* Every internal node satisfies the ROBDD invariants: ``lo != hi`` and the
  children's levels are strictly greater than the node's level.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Sequence

from repro import obs as _obs

#: Pseudo-level assigned to the two terminal nodes; larger than any real
#: variable level so that terminals always sort below internal nodes.
TERMINAL_LEVEL = 1 << 30

FALSE = 0
TRUE = 1


class VarCube:
    """An interned set of quantification variables.

    Quantification results are cached at the manager level under
    ``(node, cube_id)`` keys; interning the variable set once gives every
    repeat of ``∃x f`` / ``∀x f`` a stable small integer to key on.
    Obtain instances through :meth:`BDDManager.intern_cube` — identity
    matters, do not construct these directly.
    """

    __slots__ = ("cube_id", "vars", "max_level")

    def __init__(self, cube_id: int, vars: FrozenSet[int], max_level: int) -> None:
        self.cube_id = cube_id
        self.vars = vars
        self.max_level = max_level

    def __iter__(self) -> Iterator[int]:
        return iter(self.vars)

    def __len__(self) -> int:
        return len(self.vars)

    def __contains__(self, var: int) -> bool:
        return var in self.vars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VarCube #{self.cube_id} vars={sorted(self.vars)}>"


class ManagerStats:
    """Local per-manager instrumentation counters.

    Kept as plain slotted integers (not :mod:`repro.obs` calls) because
    the operator cores are the hottest code in the package; the obs
    registry aggregates these objects at report time instead.  ``None``
    on uninstrumented managers, so the per-operation cost while disabled
    is a single attribute check.
    """

    __slots__ = (
        "ite_hits",
        "ite_misses",
        "and_hits",
        "and_misses",
        "or_hits",
        "or_misses",
        "xor_hits",
        "xor_misses",
        "not_hits",
        "not_misses",
        "exists_hits",
        "exists_misses",
        "forall_hits",
        "forall_misses",
        "and_exists_hits",
        "and_exists_misses",
        "inserts",
        "cache_clears",
        "cache_evicted",
    )

    def __init__(self) -> None:
        for slot in self.__slots__:
            setattr(self, slot, 0)

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot under the names the obs ``bdd`` family uses."""
        return {
            "cache.ite.hits": self.ite_hits,
            "cache.ite.misses": self.ite_misses,
            "cache.and.hits": self.and_hits,
            "cache.and.misses": self.and_misses,
            "cache.or.hits": self.or_hits,
            "cache.or.misses": self.or_misses,
            "cache.xor.hits": self.xor_hits,
            "cache.xor.misses": self.xor_misses,
            "cache.not.hits": self.not_hits,
            "cache.not.misses": self.not_misses,
            "cache.exists.hits": self.exists_hits,
            "cache.exists.misses": self.exists_misses,
            "cache.forall.hits": self.forall_hits,
            "cache.forall.misses": self.forall_misses,
            "cache.and_exists.hits": self.and_exists_hits,
            "cache.and_exists.misses": self.and_exists_misses,
            "unique.inserts": self.inserts,
            "cache.clears": self.cache_clears,
            "cache.evicted": self.cache_evicted,
        }


class BDDManager:
    """A shared pool of ROBDD nodes over a common variable order.

    All functions created through one manager may be freely combined with
    each other; mixing nodes from different managers is an error (use
    :func:`repro.bdd.compose.transfer` to move functions between managers).

    Parameters
    ----------
    num_vars:
        Number of variables to pre-declare (they get default names
        ``x0, x1, ...``).  More can be added later with :meth:`new_var`.
    """

    def __init__(self, num_vars: int = 0) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._level = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._lo = [0, 1]
        self._hi = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._and_cache: dict[tuple[int, int], int] = {}
        self._or_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        self._not_cache: dict[int, int] = {}
        # Persistent quantification caches, keyed by (node, cube_id) —
        # see repro.bdd.quantify.  Interned cubes live for the manager's
        # lifetime (bounded by the number of distinct variable sets).
        self._exists_cache: dict[tuple[int, int], int] = {}
        self._forall_cache: dict[tuple[int, int], int] = {}
        self._and_exists_cache: dict[tuple[int, int, int], int] = {}
        self._cube_table: dict[FrozenSet[int], VarCube] = {}
        self._var_names: list[str] = []
        self._name_to_var: dict[str, int] = {}
        self._stats: Optional[ManagerStats] = None
        if _obs.enabled():
            self.enable_stats()
        for _ in range(num_vars):
            self.new_var()

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Optional[ManagerStats]:
        """Cache/unique-table counters, or ``None`` when untracked."""
        return self._stats

    def enable_stats(self) -> ManagerStats:
        """Start tracking operation statistics on this manager (counting
        begins now; managers built while ``repro.obs`` is enabled track
        from birth automatically)."""
        if self._stats is None:
            self._stats = ManagerStats()
            _obs.track_bdd_manager(self)
        return self._stats

    @property
    def unique_size(self) -> int:
        """Number of unique-table entries (internal nodes)."""
        return len(self._unique)

    def cache_sizes(self) -> dict[str, int]:
        """Current entry counts of the operation and quantification
        caches."""
        return {
            "ite": len(self._ite_cache),
            "and": len(self._and_cache),
            "or": len(self._or_cache),
            "xor": len(self._xor_cache),
            "not": len(self._not_cache),
            "exists": len(self._exists_cache),
            "forall": len(self._forall_cache),
            "and_exists": len(self._and_exists_cache),
        }

    def monitor_sample(self) -> dict[str, int]:
        """Cheap structural gauges for the runtime monitor: node/unique
        counts and the summed cache entries.  Reads only ``len()`` of
        existing containers, so it is safe to call from a sampler thread
        while operator cores are running."""
        return {
            "nodes": self.num_nodes,
            "unique": len(self._unique),
            "cache_entries": (
                len(self._ite_cache)
                + len(self._and_cache)
                + len(self._or_cache)
                + len(self._xor_cache)
                + len(self._not_cache)
                + len(self._exists_cache)
                + len(self._forall_cache)
                + len(self._and_exists_cache)
            ),
            "vars": self.num_vars,
        }

    def stats_snapshot(self) -> dict[str, int]:
        """Point-in-time statistics: structure gauges plus (when tracked)
        the operation counters."""
        snapshot = {
            "num_vars": self.num_vars,
            "num_nodes": self.num_nodes,
            "unique_size": self.unique_size,
            **{
                f"cache.{name}.size": size
                for name, size in self.cache_sizes().items()
            },
        }
        if self._stats is not None:
            snapshot.update(self._stats.as_dict())
        return snapshot

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Declare a fresh variable (appended at the bottom of the order).

        Returns the variable index.  Raises ``ValueError`` on a duplicate
        name.
        """
        index = len(self._var_names)
        if name is None:
            name = f"x{index}"
        if name in self._name_to_var:
            raise ValueError(f"duplicate variable name: {name!r}")
        self._var_names.append(name)
        self._name_to_var[name] = index
        return index

    def new_vars(self, count: int, prefix: str = "x") -> list[int]:
        """Declare ``count`` fresh variables named ``{prefix}{i}``."""
        start = len(self._var_names)
        return [self.new_var(f"{prefix}{start + i}") for i in range(count)]

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._var_names[var]

    def var_index(self, name: str) -> int:
        """Variable index for ``name``; raises ``KeyError`` if unknown."""
        return self._name_to_var[name]

    def var(self, var: int) -> int:
        """Node for the positive literal of variable ``var``."""
        if var >= len(self._var_names):
            raise ValueError(f"variable {var} not declared")
        return self._mk(var, FALSE, TRUE)

    def nvar(self, var: int) -> int:
        """Node for the negative literal of variable ``var``."""
        if var >= len(self._var_names):
            raise ValueError(f"variable {var} not declared")
        return self._mk(var, TRUE, FALSE)

    def literal(self, var: int, positive: bool) -> int:
        """Node for the literal of ``var`` with the given polarity."""
        return self.var(var) if positive else self.nvar(var)

    # ------------------------------------------------------------------
    # Quantification cubes
    # ------------------------------------------------------------------

    def intern_cube(self, variables: "Iterable[int] | VarCube") -> VarCube:
        """Intern a set of variables as a :class:`VarCube`.

        The same variable set always maps to the same cube object (and
        ``cube_id``), which is what makes the persistent quantification
        caches shareable across calls.  Passing an existing cube returns
        it unchanged.
        """
        if isinstance(variables, VarCube):
            return variables
        key = frozenset(variables)
        cube = self._cube_table.get(key)
        if cube is None:
            cube = VarCube(len(self._cube_table), key, max(key) if key else -1)
            self._cube_table[key] = cube
        return cube

    # ------------------------------------------------------------------
    # Node structure access
    # ------------------------------------------------------------------

    def level(self, node: int) -> int:
        """Level (== variable index) of ``node``; terminals report a
        sentinel larger than any variable level."""
        return self._level[node]

    def top_var(self, node: int) -> int:
        """Top variable of a non-terminal ``node``."""
        lvl = self._level[node]
        if lvl == TERMINAL_LEVEL:
            raise ValueError("terminal node has no top variable")
        return lvl

    def lo(self, node: int) -> int:
        """Low (else) child of ``node``."""
        return self._lo[node]

    def hi(self, node: int) -> int:
        """High (then) child of ``node``."""
        return self._hi[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes 0 and 1."""
        return node <= 1

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever created (including terminals)."""
        return len(self._level)

    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(level, lo, hi)`` (the unique-table
        lookup that enforces canonicity).  The operator cores inline this
        logic; out-of-line callers (builders, compose, quantify) use this
        method."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
            if self._stats is not None:
                self._stats.inserts += 1
        return node

    # ------------------------------------------------------------------
    # Boolean operators (iterative explicit-stack cores)
    # ------------------------------------------------------------------
    #
    # Each core is a post-order walk driven by two explicit stacks:
    # ``tasks`` holds tagged frames (tag 0 = expand a subproblem, higher
    # tags = reduce with children's results), ``results`` accumulates
    # one value per finished subproblem.  Expanding pushes the reduce
    # frame first, then the hi and lo children, so children complete
    # before their reduce frame pops.  Node arrays, the unique table and
    # the op cache are bound to locals, and the ``_mk`` unique-table
    # lookup is fused into the reduce step.

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.

        The workhorse ternary operator; all other connectives reduce to it,
        though AND/OR/XOR have specialised fast paths below.
        """
        # Terminal short-circuits.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.negate(f)
        stats = self._stats
        cache = self._ite_cache
        cached = cache.get((f, g, h))
        if cached is not None:
            if stats is not None:
                stats.ite_hits += 1
            return cached
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        unique = self._unique
        negate = self.negate
        tasks: list[tuple] = [(0, f, g, h)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                _, f, g, h = frame
                if f == TRUE:
                    rpush(g)
                    continue
                if f == FALSE:
                    rpush(h)
                    continue
                if g == h:
                    rpush(g)
                    continue
                if g == TRUE and h == FALSE:
                    rpush(f)
                    continue
                if g == FALSE and h == TRUE:
                    rpush(negate(f))
                    continue
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    if stats is not None:
                        stats.ite_hits += 1
                    rpush(cached)
                    continue
                if stats is not None:
                    stats.ite_misses += 1
                lf = level[f]
                lg = level[g]
                lh = level[h]
                top = lf
                if lg < top:
                    top = lg
                if lh < top:
                    top = lh
                if lf == top:
                    f0 = lo_arr[f]
                    f1 = hi_arr[f]
                else:
                    f0 = f1 = f
                if lg == top:
                    g0 = lo_arr[g]
                    g1 = hi_arr[g]
                else:
                    g0 = g1 = g
                if lh == top:
                    h0 = lo_arr[h]
                    h1 = hi_arr[h]
                else:
                    h0 = h1 = h
                push((1, key, top))
                push((0, f1, g1, h1))
                push((0, f0, g0, h0))
            else:
                _, key, top = frame
                hi = results.pop()
                lo = results[-1]
                if lo == hi:
                    node = lo
                else:
                    ukey = (top, lo, hi)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(top)
                        lo_arr.append(lo)
                        hi_arr.append(hi)
                        unique[ukey] = node
                        if stats is not None:
                            stats.inserts += 1
                cache[key] = node
                results[-1] = node
        return results[0]

    def negate(self, f: int) -> int:
        """Complement ``~f``."""
        if f <= 1:
            return 1 - f
        stats = self._stats
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            if stats is not None:
                stats.not_hits += 1
            return cached
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        unique = self._unique
        tasks: list[tuple[int, int]] = [(0, f)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            tag, n = tasks.pop()
            if tag == 0:
                if n <= 1:
                    rpush(1 - n)
                    continue
                cached = cache.get(n)
                if cached is not None:
                    if stats is not None:
                        stats.not_hits += 1
                    rpush(cached)
                    continue
                if stats is not None:
                    stats.not_misses += 1
                push((1, n))
                push((0, hi_arr[n]))
                push((0, lo_arr[n]))
            else:
                hi = results.pop()
                lo = results[-1]
                ukey = (level[n], lo, hi)
                node = unique.get(ukey)
                if node is None:
                    node = len(level)
                    level.append(level[n])
                    lo_arr.append(lo)
                    hi_arr.append(hi)
                    unique[ukey] = node
                    if stats is not None:
                        stats.inserts += 1
                cache[n] = node
                cache[node] = n
                results[-1] = node
        return results[0]

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction ``f & g``."""
        if f == g:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f > g:
            f, g = g, f
        stats = self._stats
        cache = self._and_cache
        cached = cache.get((f, g))
        if cached is not None:
            if stats is not None:
                stats.and_hits += 1
            return cached
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        unique = self._unique
        tasks: list[tuple] = [(0, f, g)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                _, a, b = frame
                if a == b:
                    rpush(a)
                    continue
                if a == FALSE or b == FALSE:
                    rpush(FALSE)
                    continue
                if a == TRUE:
                    rpush(b)
                    continue
                if b == TRUE:
                    rpush(a)
                    continue
                if a > b:
                    a, b = b, a
                key = (a, b)
                cached = cache.get(key)
                if cached is not None:
                    if stats is not None:
                        stats.and_hits += 1
                    rpush(cached)
                    continue
                if stats is not None:
                    stats.and_misses += 1
                la = level[a]
                lb = level[b]
                if la < lb:
                    top = la
                    a0 = lo_arr[a]
                    a1 = hi_arr[a]
                    b0 = b1 = b
                elif lb < la:
                    top = lb
                    a0 = a1 = a
                    b0 = lo_arr[b]
                    b1 = hi_arr[b]
                else:
                    top = la
                    a0 = lo_arr[a]
                    a1 = hi_arr[a]
                    b0 = lo_arr[b]
                    b1 = hi_arr[b]
                push((1, key, top))
                push((0, a1, b1))
                push((0, a0, b0))
            else:
                _, key, top = frame
                hi = results.pop()
                lo = results[-1]
                if lo == hi:
                    node = lo
                else:
                    ukey = (top, lo, hi)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(top)
                        lo_arr.append(lo)
                        hi_arr.append(hi)
                        unique[ukey] = node
                        if stats is not None:
                            stats.inserts += 1
                cache[key] = node
                results[-1] = node
        return results[0]

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction ``f | g`` (direct core — no De Morgan detour
        through two negations and an AND)."""
        if f == g:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f > g:
            f, g = g, f
        stats = self._stats
        cache = self._or_cache
        cached = cache.get((f, g))
        if cached is not None:
            if stats is not None:
                stats.or_hits += 1
            return cached
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        unique = self._unique
        tasks: list[tuple] = [(0, f, g)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                _, a, b = frame
                if a == b:
                    rpush(a)
                    continue
                if a == TRUE or b == TRUE:
                    rpush(TRUE)
                    continue
                if a == FALSE:
                    rpush(b)
                    continue
                if b == FALSE:
                    rpush(a)
                    continue
                if a > b:
                    a, b = b, a
                key = (a, b)
                cached = cache.get(key)
                if cached is not None:
                    if stats is not None:
                        stats.or_hits += 1
                    rpush(cached)
                    continue
                if stats is not None:
                    stats.or_misses += 1
                la = level[a]
                lb = level[b]
                if la < lb:
                    top = la
                    a0 = lo_arr[a]
                    a1 = hi_arr[a]
                    b0 = b1 = b
                elif lb < la:
                    top = lb
                    a0 = a1 = a
                    b0 = lo_arr[b]
                    b1 = hi_arr[b]
                else:
                    top = la
                    a0 = lo_arr[a]
                    a1 = hi_arr[a]
                    b0 = lo_arr[b]
                    b1 = hi_arr[b]
                push((1, key, top))
                push((0, a1, b1))
                push((0, a0, b0))
            else:
                _, key, top = frame
                hi = results.pop()
                lo = results[-1]
                if lo == hi:
                    node = lo
                else:
                    ukey = (top, lo, hi)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(top)
                        lo_arr.append(lo)
                        hi_arr.append(hi)
                        unique[ukey] = node
                        if stats is not None:
                            stats.inserts += 1
                cache[key] = node
                results[-1] = node
        return results[0]

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or ``f ^ g``."""
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.negate(g)
        if g == TRUE:
            return self.negate(f)
        if f > g:
            f, g = g, f
        stats = self._stats
        cache = self._xor_cache
        cached = cache.get((f, g))
        if cached is not None:
            if stats is not None:
                stats.xor_hits += 1
            return cached
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        unique = self._unique
        negate = self.negate
        tasks: list[tuple] = [(0, f, g)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            frame = tasks.pop()
            if frame[0] == 0:
                _, a, b = frame
                if a == b:
                    rpush(FALSE)
                    continue
                if a == FALSE:
                    rpush(b)
                    continue
                if b == FALSE:
                    rpush(a)
                    continue
                if a == TRUE:
                    rpush(negate(b))
                    continue
                if b == TRUE:
                    rpush(negate(a))
                    continue
                if a > b:
                    a, b = b, a
                key = (a, b)
                cached = cache.get(key)
                if cached is not None:
                    if stats is not None:
                        stats.xor_hits += 1
                    rpush(cached)
                    continue
                if stats is not None:
                    stats.xor_misses += 1
                la = level[a]
                lb = level[b]
                if la < lb:
                    top = la
                    a0 = lo_arr[a]
                    a1 = hi_arr[a]
                    b0 = b1 = b
                elif lb < la:
                    top = lb
                    a0 = a1 = a
                    b0 = lo_arr[b]
                    b1 = hi_arr[b]
                else:
                    top = la
                    a0 = lo_arr[a]
                    a1 = hi_arr[a]
                    b0 = lo_arr[b]
                    b1 = hi_arr[b]
                push((1, key, top))
                push((0, a1, b1))
                push((0, a0, b0))
            else:
                _, key, top = frame
                hi = results.pop()
                lo = results[-1]
                if lo == hi:
                    node = lo
                else:
                    ukey = (top, lo, hi)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(top)
                        lo_arr.append(lo)
                        hi_arr.append(hi)
                        unique[ukey] = node
                        if stats is not None:
                            stats.inserts += 1
                cache[key] = node
                results[-1] = node
        return results[0]

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence ``~(f ^ g)``."""
        return self.negate(self.apply_xor(f, g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``~f | g``."""
        return self.apply_or(self.negate(f), g)

    def leq(self, f: int, g: int) -> bool:
        """The paper's "less-than-or-equal" relation: ``f <= g`` holds iff
        ``f -> g`` is a tautology (Section 3.2.1)."""
        return self.implies(f, g) == TRUE

    def conjoin(self, nodes: Iterable[int]) -> int:
        """AND of an iterable of nodes (TRUE for an empty iterable)."""
        result = TRUE
        for node in nodes:
            result = self.apply_and(result, node)
            if result == FALSE:
                return FALSE
        return result

    def disjoin(self, nodes: Iterable[int]) -> int:
        """OR of an iterable of nodes (FALSE for an empty iterable)."""
        result = FALSE
        for node in nodes:
            result = self.apply_or(result, node)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # Cofactors and evaluation
    # ------------------------------------------------------------------

    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Shannon cofactor of ``f`` with respect to one literal."""
        return self.restrict(f, {var: value})

    def restrict(self, f: int, assignment: dict[int, bool]) -> int:
        """Simultaneous cofactor by a partial assignment ``{var: value}``."""
        if not assignment or f <= 1:
            return f
        stats = self._stats
        level = self._level
        lo_arr = self._lo
        hi_arr = self._hi
        unique = self._unique
        max_level = max(assignment)
        memo: dict[int, int] = {}
        # Tags: 0 expand, 1 rebuild from two children, 2 forward the
        # single (assigned-variable) child's result.
        tasks: list[tuple[int, int]] = [(0, f)]
        push = tasks.append
        results: list[int] = []
        rpush = results.append
        while tasks:
            tag, n = tasks.pop()
            if tag == 0:
                if n <= 1 or level[n] > max_level:
                    rpush(n)
                    continue
                hit = memo.get(n)
                if hit is not None:
                    rpush(hit)
                    continue
                lvl = level[n]
                if lvl in assignment:
                    push((2, n))
                    push((0, hi_arr[n] if assignment[lvl] else lo_arr[n]))
                else:
                    push((1, n))
                    push((0, hi_arr[n]))
                    push((0, lo_arr[n]))
            elif tag == 1:
                hi = results.pop()
                lo = results[-1]
                if lo == hi:
                    node = lo
                else:
                    ukey = (level[n], lo, hi)
                    node = unique.get(ukey)
                    if node is None:
                        node = len(level)
                        level.append(level[n])
                        lo_arr.append(lo)
                        hi_arr.append(hi)
                        unique[ukey] = node
                        if stats is not None:
                            stats.inserts += 1
                memo[n] = node
                results[-1] = node
            else:
                memo[n] = results[-1]
        return results[0]

    def evaluate(self, f: int, assignment: Sequence[bool] | dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment.

        ``assignment`` is either a sequence indexed by variable or a dict;
        variables not on ``f``'s path are ignored.  Raises ``ValueError``
        when a variable on the evaluation path has no assigned value.
        """
        node = f
        while node > 1:
            level = self._level[node]
            try:
                value = assignment[level]
            except (KeyError, IndexError):
                raise ValueError(
                    f"assignment is missing variable "
                    f"{self._var_names[level]!r} (index {level}), which lies "
                    f"on the evaluation path"
                ) from None
            node = self._hi[node] if value else self._lo[node]
        return node == TRUE

    def cube(self, literals: dict[int, bool]) -> int:
        """Conjunction of literals given as ``{var: polarity}``."""
        node = TRUE
        for var in sorted(literals, reverse=True):
            node = self._mk(
                var,
                FALSE if literals[var] else node,
                node if literals[var] else FALSE,
            )
        return node

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear_caches(self) -> int:
        """Drop all operation caches, including the persistent
        quantification caches (the unique table and the interned cube
        table are kept — the latter is bounded by the number of distinct
        variable sets ever quantified).

        Useful between phases of a long-running computation to bound
        memory; correctness is unaffected.  Returns the number of evicted
        cache entries and, on instrumented managers, emits a
        ``bdd.clear_caches`` obs event so mid-run evictions are visible
        in reports.
        """
        caches = (
            self._ite_cache,
            self._and_cache,
            self._or_cache,
            self._xor_cache,
            self._not_cache,
            self._exists_cache,
            self._forall_cache,
            self._and_exists_cache,
        )
        evicted = sum(len(cache) for cache in caches)
        for cache in caches:
            cache.clear()
        if self._stats is not None:
            self._stats.cache_clears += 1
            self._stats.cache_evicted += evicted
            _obs.event(
                "bdd.clear_caches",
                evicted=evicted,
                unique=len(self._unique),
            )
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BDDManager vars={self.num_vars} nodes={self.num_nodes} "
            f"unique={len(self._unique)}>"
        )


def iter_nodes(manager: BDDManager, root: int) -> Iterator[int]:
    """Yield every node reachable from ``root`` exactly once (terminals
    included), children before parents (iterative postorder)."""
    seen: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded or node <= 1:
            seen.add(node)
            yield node
            continue
        stack.append((node, True))
        stack.append((manager.hi(node), False))
        stack.append((manager.lo(node), False))
