"""On-demand build and load of the native BDD operator kernel.

The manager's hot operator cores (`ite`, AND/OR/XOR, negate) and the
quantification cores (exists/forall/and_exists) have a C
implementation in ``_kernel.c`` that works directly on the manager's
flat ``array('q')`` buffers.  This module compiles it once per source
digest (``cc -O2 -shared -fPIC``) into ``_build/`` next to the source
and loads it through cffi's ABI mode — no setuptools, no extension
machinery, and a silent fallback to the pure-Python cores when a
compiler or cffi is unavailable.

Environment gate ``REPRO_NATIVE``:

* unset or ``"1"``/``"auto"`` — try to build/load, fall back silently;
* ``"0"`` — never load the native kernel (pure-Python cores);
* ``"require"`` — raise ``RuntimeError`` if the kernel cannot load
  (used by differential tests that would silently test nothing).

Both kernels share one storage layout and one traversal order, so node
numbering — and therefore synthesis output — is identical either way;
:func:`kernel` only decides how fast the frames run.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import threading
from typing import Any, Optional

_DIR = os.path.dirname(os.path.abspath(__file__))
_SOURCE = os.path.join(_DIR, "_kernel.c")
_BUILD_DIR = os.path.join(_DIR, "_build")

#: cffi declarations for the kernel entry points (ABI mode).
_CDEF = """
int64_t bdd_negate(int64_t f,
    int64_t *ctrl, int64_t *level, int64_t *loa, int64_t *hia,
    int64_t *uniq, int64_t *and_k, int64_t *and_v, int64_t *or_k,
    int64_t *or_v, int64_t *xor_k, int64_t *xor_v, int64_t *not_k,
    int64_t *not_v, int64_t *ite_ka, int64_t *ite_kb, int64_t *ite_v,
    int64_t *stats);
int64_t bdd_apply(int64_t op, int64_t f, int64_t g,
    int64_t *ctrl, int64_t *level, int64_t *loa, int64_t *hia,
    int64_t *uniq, int64_t *and_k, int64_t *and_v, int64_t *or_k,
    int64_t *or_v, int64_t *xor_k, int64_t *xor_v, int64_t *not_k,
    int64_t *not_v, int64_t *ite_ka, int64_t *ite_kb, int64_t *ite_v,
    int64_t *stats);
int64_t bdd_ite(int64_t f, int64_t g, int64_t h,
    int64_t *ctrl, int64_t *level, int64_t *loa, int64_t *hia,
    int64_t *uniq, int64_t *and_k, int64_t *and_v, int64_t *or_k,
    int64_t *or_v, int64_t *xor_k, int64_t *xor_v, int64_t *not_k,
    int64_t *not_v, int64_t *ite_ka, int64_t *ite_kb, int64_t *ite_v,
    int64_t *stats);
int64_t bdd_quantify(int64_t op, int64_t f, int64_t cid, int64_t *cube,
    int64_t cube_len, int64_t max_level, int64_t *qk, int64_t *qv,
    int64_t qmask, int64_t *quse,
    int64_t *ctrl, int64_t *level, int64_t *loa, int64_t *hia,
    int64_t *uniq, int64_t *and_k, int64_t *and_v, int64_t *or_k,
    int64_t *or_v, int64_t *xor_k, int64_t *xor_v, int64_t *not_k,
    int64_t *not_v, int64_t *ite_ka, int64_t *ite_kb, int64_t *ite_v,
    int64_t *stats);
int64_t bdd_and_exists(int64_t f, int64_t g, int64_t cid, int64_t *cube,
    int64_t cube_len, int64_t max_level, int64_t *ex_k, int64_t *ex_v,
    int64_t ex_mask, int64_t *ex_use, int64_t *ae_k1, int64_t *ae_k2,
    int64_t *ae_v, int64_t ae_mask, int64_t *ae_use,
    int64_t *ctrl, int64_t *level, int64_t *loa, int64_t *hia,
    int64_t *uniq, int64_t *and_k, int64_t *and_v, int64_t *or_k,
    int64_t *or_v, int64_t *xor_k, int64_t *xor_v, int64_t *not_k,
    int64_t *not_v, int64_t *ite_ka, int64_t *ite_kb, int64_t *ite_v,
    int64_t *stats);
void bdd_rehash_unique(int64_t *ctrl, int64_t *level, int64_t *loa,
    int64_t *hia, int64_t *slots, int64_t new_mask);
"""

_lock = threading.Lock()
_loaded = False
_handle: Optional[tuple[Any, Any]] = None
_failure: Optional[str] = None


def _mode() -> str:
    return os.environ.get("REPRO_NATIVE", "auto").strip().lower()


def _compiler() -> Optional[str]:
    import shutil

    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _build_and_load() -> tuple[Any, Any]:
    from cffi import FFI

    with open(_SOURCE, "rb") as handle:
        source = handle.read()
    digest = hashlib.sha256(source + _CDEF.encode()).hexdigest()[:16]
    so_path = os.path.join(_BUILD_DIR, f"repro_bdd_kernel_{digest}.so")
    if not os.path.exists(so_path):
        cc = _compiler()
        if cc is None:
            raise RuntimeError("no C compiler found (cc/gcc/clang)")
        os.makedirs(_BUILD_DIR, exist_ok=True)
        # Per-pid scratch name + atomic rename, so concurrent builds
        # (parallel workers importing simultaneously) never race.
        scratch = os.path.join(_BUILD_DIR, f".tmp_{os.getpid()}.so")
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", scratch, _SOURCE],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(scratch, so_path)
    ffi = FFI()
    ffi.cdef(_CDEF)
    lib = ffi.dlopen(so_path)
    return ffi, lib


def kernel() -> Optional[tuple[Any, Any]]:
    """The loaded ``(ffi, lib)`` pair, or ``None`` when native cores are
    disabled or unavailable.  Build/load happens once per process."""
    global _loaded, _handle, _failure
    if _loaded:
        return _handle
    with _lock:
        if _loaded:
            return _handle
        mode = _mode()
        if mode == "0":
            _failure = "disabled by REPRO_NATIVE=0"
            _handle = None
        else:
            try:
                _handle = _build_and_load()
            except Exception as exc:  # missing cffi/cc, compile error
                _failure = f"{type(exc).__name__}: {exc}"
                _handle = None
                if mode == "require":
                    _loaded = True
                    raise RuntimeError(
                        f"REPRO_NATIVE=require but the native BDD kernel "
                        f"failed to load: {_failure}"
                    ) from exc
        _loaded = True
    return _handle


def native_status() -> dict[str, Any]:
    """Diagnostic view: whether the kernel is loaded and, if not, why."""
    return {
        "mode": _mode(),
        "loaded": _handle is not None,
        "attempted": _loaded,
        "failure": _failure,
    }
