"""Variable reordering by rebuild-based sifting.

The manager keeps variable index == level for speed, so reordering is
done by *transferring* functions into a manager with a different creation
order (see :func:`repro.bdd.compose.transfer`). This module searches for
a good order: greedy window permutation and a sifting-style hill climb,
both measuring shared dag size of the function set under candidate
orders.

Reordering runs offline — at *safe points* between operator calls, never
inside one (the paper's computations choose their interleavings up
front, e.g. ``c1_i, c2_i, x_i`` in :mod:`repro.bidec.symbolic`).  The
engine triggers it automatically through the manager's growth trigger
(:meth:`BDDManager.reorder_due`, the ``--auto-reorder`` knob): pass
boundaries and reachability-iteration boundaries poll the trigger and
call :func:`reorder` / a compacting rebuild when the node count has
outgrown the threshold.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs as _obs
from repro.bdd.compose import transfer_multi
from repro.bdd.count import dag_size_multi
from repro.bdd.manager import BDDManager


def order_cost(
    manager: BDDManager, roots: Sequence[int], order: Sequence[int]
) -> int:
    """Shared dag size of ``roots`` when rebuilt under ``order`` (a
    permutation of the variables: ``order[level] = old variable``)."""
    target = BDDManager(manager.num_vars, native=manager.native)
    var_map = {old: level for level, old in enumerate(order)}
    moved = transfer_multi(manager, roots, target, var_map)
    return dag_size_multi(target, moved)


def sift_order(
    manager: BDDManager,
    roots: Sequence[int],
    max_rounds: int = 2,
    max_vars: int = 24,
) -> list[int]:
    """Sifting: move each variable through every position, keep the best.

    Returns the best order found (``order[level] = variable``).  Cost is
    evaluated by rebuilding, so this is O(n^2) transfers — fine for the
    few dozen variables of a collapsed cone, not for whole designs.
    Identical candidate orders recur across positions and rounds (the
    hill climb revisits its own steps), so costs are memoized per order.

    Managers wider than ``max_vars`` skip the hill climb and keep the
    identity order: the quadratic rebuild cost model would dominate the
    very growth it is meant to curb, and the caller's rebuild under the
    unchanged order still compacts dead nodes — the bulk of the win for
    a whole transition system.
    """
    n = manager.num_vars
    order = list(range(n))
    if n > max_vars:
        size = dag_size_multi(manager, list(roots))
        _obs.event(
            "bdd.reorder",
            vars=n,
            roots=len(roots),
            size_before=size,
            size_after=size,
            orders_tried=0,
        )
        return order
    memo: dict[tuple[int, ...], int] = {}

    def cost_of(candidate: list[int]) -> int:
        key = tuple(candidate)
        cached = memo.get(key)
        if cached is None:
            cached = memo[key] = order_cost(manager, roots, candidate)
        return cached

    best_cost = cost_of(order)
    before = best_cost
    with _obs.span("bdd.reorder.sift"):
        for _ in range(max_rounds):
            improved = False
            for variable in range(n):
                position = order.index(variable)
                best_position = position
                for candidate in range(n):
                    if candidate == position:
                        continue
                    trial = list(order)
                    trial.pop(position)
                    trial.insert(candidate, variable)
                    cost = cost_of(trial)
                    if cost < best_cost:
                        best_cost = cost
                        best_position = candidate
                if best_position != position:
                    order.pop(position)
                    order.insert(best_position, variable)
                    improved = True
            if not improved:
                break
    _obs.event(
        "bdd.reorder",
        vars=n,
        roots=len(roots),
        size_before=before,
        size_after=best_cost,
        orders_tried=len(memo),
    )
    return order


def reorder(
    manager: BDDManager, roots: Sequence[int], max_rounds: int = 2
) -> tuple[BDDManager, list[int], dict[int, int]]:
    """Sift, then rebuild ``roots`` into a fresh manager under the best
    order found.

    Returns ``(new_manager, new_roots, var_map)`` where ``var_map`` maps
    old variable indices to new ones.  Variable names and the manager's
    kernel/auto-reorder configuration are carried over.
    """
    order = sift_order(manager, roots, max_rounds)
    target = BDDManager(
        native=manager.native,
        auto_reorder_threshold=manager.auto_reorder_threshold,
    )
    var_map = {old: level for level, old in enumerate(order)}
    for old in order:
        target.new_var(manager.var_name(old))
    moved = transfer_multi(manager, roots, target, var_map)
    target.mark_reordered()
    return target, moved, var_map
