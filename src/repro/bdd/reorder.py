"""Variable reordering by rebuild-based sifting.

The manager keeps variable index == level for speed, so reordering is
done by *transferring* functions into a manager with a different creation
order (see :func:`repro.bdd.compose.transfer`). This module searches for
a good order: greedy window permutation and a sifting-style hill climb,
both measuring shared dag size of the function set under candidate
orders.

This is deliberately offline reordering (the paper's computations choose
their interleavings up front, e.g. ``c1_i, c2_i, x_i`` in
:mod:`repro.bidec.symbolic`); dynamic in-place reordering is out of scope
for a pure-Python engine.
"""

from __future__ import annotations

from typing import Sequence

from repro.bdd.compose import transfer
from repro.bdd.count import dag_size_multi
from repro.bdd.manager import BDDManager


def order_cost(
    manager: BDDManager, roots: Sequence[int], order: Sequence[int]
) -> int:
    """Shared dag size of ``roots`` when rebuilt under ``order`` (a
    permutation of the variables: ``order[level] = old variable``)."""
    target = BDDManager(manager.num_vars)
    var_map = {old: level for level, old in enumerate(order)}
    moved = [transfer(manager, root, target, var_map) for root in roots]
    return dag_size_multi(target, moved)


def sift_order(
    manager: BDDManager,
    roots: Sequence[int],
    max_rounds: int = 2,
) -> list[int]:
    """Sifting: move each variable through every position, keep the best.

    Returns the best order found (``order[level] = variable``).  Cost is
    evaluated by rebuilding, so this is O(n^2) transfers — fine for the
    few dozen variables of a collapsed cone, not for whole designs.
    """
    n = manager.num_vars
    order = list(range(n))
    best_cost = order_cost(manager, roots, order)
    for _ in range(max_rounds):
        improved = False
        for variable in range(n):
            position = order.index(variable)
            best_position = position
            for candidate in range(n):
                if candidate == position:
                    continue
                trial = list(order)
                trial.pop(position)
                trial.insert(candidate, variable)
                cost = order_cost(manager, roots, trial)
                if cost < best_cost:
                    best_cost = cost
                    best_position = candidate
            if best_position != position:
                order.pop(position)
                order.insert(best_position, variable)
                improved = True
        if not improved:
            break
    return order


def reorder(
    manager: BDDManager, roots: Sequence[int], max_rounds: int = 2
) -> tuple[BDDManager, list[int], dict[int, int]]:
    """Sift, then rebuild ``roots`` into a fresh manager under the best
    order found.

    Returns ``(new_manager, new_roots, var_map)`` where ``var_map`` maps
    old variable indices to new ones.  Variable names are carried over.
    """
    order = sift_order(manager, roots, max_rounds)
    target = BDDManager()
    var_map = {old: level for level, old in enumerate(order)}
    for old in order:
        target.new_var(manager.var_name(old))
    moved = [transfer(manager, root, target, var_map) for root in roots]
    return target, moved, var_map
