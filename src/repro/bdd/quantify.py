"""Quantification over BDD variables.

Implements existential and universal abstraction plus the fused
``and_exists`` (relational product) used by image computation, where
conjoining and quantifying in one pass avoids building the full
intermediate conjunction.

Results are cached *persistently* on the manager in lossless
open-addressed array tables (they grow by rehash, never evict), keyed by
``node << 31 | cube_id`` over interned
:class:`~repro.bdd.manager.VarCube` objects — repeated ``∃x f`` /
``∀x f`` over the same variable set (the ``ITE(c_x, f, ∀x f)``
parameterization loops, image iterations) hit the cache instead of
re-walking.  The caches are dropped by
:meth:`BDDManager.clear_caches` and surfaced through
``ManagerStats``/``cache_sizes``.  Like the manager's operator cores,
the walks are iterative (explicit stacks), so deep chain-shaped BDDs do
not hit the interpreter recursion limit.
"""

from __future__ import annotations

from typing import Iterable

from repro.bdd.manager import (
    BDDManager,
    FALSE,
    TRUE,
    VarCube,
    _M1,
    _M2,
    _M3,
    _S_AE_HIT,
    _S_AE_MISS,
    _S_EX_HIT,
    _S_EX_MISS,
    _S_FA_HIT,
    _S_FA_MISS,
)


def exists(
    manager: BDDManager, f: int, variables: "Iterable[int] | VarCube"
) -> int:
    """Existential quantification ``∃ variables . f``."""
    cube = manager.intern_cube(variables)
    var_set = cube.vars
    if not var_set:
        return f
    max_level = cube.max_level
    if f <= 1 or manager._level[f] > max_level:
        return f
    cid = cube.cube_id
    manager._ensure_quantify_caches()
    sarr = manager._stat_arr
    qk = manager._ex_k
    qv = manager._ex_v
    qmask = manager._ex_mask

    # Entry probe in Python even when the C kernel is available: a warm
    # repeat then costs one probe chain, not an FFI round trip.
    fkey = (f << 31) | cid
    slot = (f * _M1 + cid * _M2) & qmask
    while True:
        k = qk[slot]
        if k == 0:
            break
        if k == fkey:
            sarr[_S_EX_HIT] += 1
            return qv[slot]
        slot = (slot + 1) & qmask
    if manager._lib is not None:
        return manager._native_quantify(0, f, cube)

    def put(key: int, value: int) -> None:
        # Growth swaps the arrays; rebind the probe locals afterwards.
        nonlocal qk, qv, qmask
        manager._q_put("ex", key, value)
        qk = manager._ex_k
        qv = manager._ex_v
        qmask = manager._ex_mask
    level = manager._level
    lo_arr = manager._lo
    hi_arr = manager._hi
    mk = manager._mk
    apply_or = manager.apply_or
    # Tags: 0 expand; 1 rebuild an unquantified level; 2 lo-cofactor of a
    # quantified level done (early-exit on TRUE, else expand hi); 3 both
    # cofactors of a quantified level done (OR them).
    tasks: list[tuple] = [(0, f)]
    push = tasks.append
    results: list[int] = []
    rpush = results.append
    while tasks:
        frame = tasks.pop()
        tag = frame[0]
        if tag == 0:
            n = frame[1]
            if n <= 1 or level[n] > max_level:
                rpush(n)
                continue
            nkey = (n << 31) | cid
            slot = (n * _M1 + cid * _M2) & qmask
            cached = -1
            while True:
                k = qk[slot]
                if k == 0:
                    break
                if k == nkey:
                    cached = qv[slot]
                    break
                slot = (slot + 1) & qmask
            if cached >= 0:
                sarr[_S_EX_HIT] += 1
                rpush(cached)
                continue
            sarr[_S_EX_MISS] += 1
            lvl = level[n]
            if lvl in var_set:
                push((2, nkey, hi_arr[n]))
                push((0, lo_arr[n]))
            else:
                push((1, nkey, lvl))
                push((0, hi_arr[n]))
                push((0, lo_arr[n]))
        elif tag == 1:
            _, nkey, lvl = frame
            hi = results.pop()
            lo = results[-1]
            node = lo if lo == hi else mk(lvl, lo, hi)
            put(nkey, node)
            results[-1] = node
        elif tag == 2:
            _, nkey, hi_child = frame
            if results[-1] == TRUE:
                put(nkey, TRUE)
                continue
            push((3, nkey))
            push((0, hi_child))
        else:
            nkey = frame[1]
            hi = results.pop()
            node = apply_or(results[-1], hi)
            put(nkey, node)
            results[-1] = node
    return results[0]


def forall(
    manager: BDDManager, f: int, variables: "Iterable[int] | VarCube"
) -> int:
    """Universal quantification ``∀ variables . f``."""
    cube = manager.intern_cube(variables)
    var_set = cube.vars
    if not var_set:
        return f
    max_level = cube.max_level
    if f <= 1 or manager._level[f] > max_level:
        return f
    cid = cube.cube_id
    manager._ensure_quantify_caches()
    sarr = manager._stat_arr
    qk = manager._fa_k
    qv = manager._fa_v
    qmask = manager._fa_mask

    fkey = (f << 31) | cid
    slot = (f * _M1 + cid * _M2) & qmask
    while True:
        k = qk[slot]
        if k == 0:
            break
        if k == fkey:
            sarr[_S_FA_HIT] += 1
            return qv[slot]
        slot = (slot + 1) & qmask
    if manager._lib is not None:
        return manager._native_quantify(1, f, cube)

    def put(key: int, value: int) -> None:
        nonlocal qk, qv, qmask
        manager._q_put("fa", key, value)
        qk = manager._fa_k
        qv = manager._fa_v
        qmask = manager._fa_mask
    level = manager._level
    lo_arr = manager._lo
    hi_arr = manager._hi
    mk = manager._mk
    apply_and = manager.apply_and
    tasks: list[tuple] = [(0, f)]
    push = tasks.append
    results: list[int] = []
    rpush = results.append
    while tasks:
        frame = tasks.pop()
        tag = frame[0]
        if tag == 0:
            n = frame[1]
            if n <= 1 or level[n] > max_level:
                rpush(n)
                continue
            nkey = (n << 31) | cid
            slot = (n * _M1 + cid * _M2) & qmask
            cached = -1
            while True:
                k = qk[slot]
                if k == 0:
                    break
                if k == nkey:
                    cached = qv[slot]
                    break
                slot = (slot + 1) & qmask
            if cached >= 0:
                sarr[_S_FA_HIT] += 1
                rpush(cached)
                continue
            sarr[_S_FA_MISS] += 1
            lvl = level[n]
            if lvl in var_set:
                push((2, nkey, hi_arr[n]))
                push((0, lo_arr[n]))
            else:
                push((1, nkey, lvl))
                push((0, hi_arr[n]))
                push((0, lo_arr[n]))
        elif tag == 1:
            _, nkey, lvl = frame
            hi = results.pop()
            lo = results[-1]
            node = lo if lo == hi else mk(lvl, lo, hi)
            put(nkey, node)
            results[-1] = node
        elif tag == 2:
            _, nkey, hi_child = frame
            if results[-1] == FALSE:
                put(nkey, FALSE)
                continue
            push((3, nkey))
            push((0, hi_child))
        else:
            nkey = frame[1]
            hi = results.pop()
            node = apply_and(results[-1], hi)
            put(nkey, node)
            results[-1] = node
    return results[0]


def and_exists(
    manager: BDDManager, f: int, g: int, variables: "Iterable[int] | VarCube"
) -> int:
    """Relational product ``∃ variables . (f & g)`` computed in one pass.

    This is the classic fused operator of symbolic model checking: the
    conjunction is never materialised for subgraphs where quantification
    collapses it first.
    """
    cube = manager.intern_cube(variables)
    var_set = cube.vars
    if not var_set:
        return manager.apply_and(f, g)
    max_level = cube.max_level
    cid = cube.cube_id
    manager._ensure_quantify_caches()
    if manager._lib is not None:
        return manager._native_and_exists(f, g, cube)
    sarr = manager._stat_arr
    qk1 = manager._ae_k1
    qk2 = manager._ae_k2
    qv = manager._ae_v
    qmask = manager._ae_mask

    def put(a: int, b: int, value: int) -> None:
        nonlocal qk1, qk2, qv, qmask
        manager._ae_put(a, b, cid, value)
        qk1 = manager._ae_k1
        qk2 = manager._ae_k2
        qv = manager._ae_v
        qmask = manager._ae_mask

    level = manager._level
    lo_arr = manager._lo
    hi_arr = manager._hi
    mk = manager._mk
    apply_or = manager.apply_or
    apply_and = manager.apply_and
    # Tags: 0 expand a (a, b) product; 1 rebuild an unquantified level;
    # 2 lo-product of a quantified level done (early-exit on TRUE, else
    # expand the hi-product); 3 both products done (OR them).
    tasks: list[tuple] = [(0, f, g)]
    push = tasks.append
    results: list[int] = []
    rpush = results.append
    while tasks:
        frame = tasks.pop()
        tag = frame[0]
        if tag == 0:
            _, a, b = frame
            if a == FALSE or b == FALSE:
                rpush(FALSE)
                continue
            if a == TRUE:
                rpush(TRUE if b == TRUE else exists(manager, b, cube))
                continue
            if b == TRUE:
                rpush(exists(manager, a, cube))
                continue
            la = level[a]
            lb = level[b]
            if la > max_level and lb > max_level:
                # No quantified variable below either operand: the
                # product degenerates to a plain conjunction.
                rpush(apply_and(a, b))
                continue
            if a > b:
                a, b = b, a
                la, lb = lb, la
            key1 = (a << 31) | b
            slot = (a * _M1 + b * _M2 + cid * _M3) & qmask
            cached = -1
            while True:
                k = qk1[slot]
                if k == 0:
                    break
                if k == key1 and qk2[slot] == cid:
                    cached = qv[slot]
                    break
                slot = (slot + 1) & qmask
            if cached >= 0:
                sarr[_S_AE_HIT] += 1
                rpush(cached)
                continue
            sarr[_S_AE_MISS] += 1
            if la < lb:
                top = la
                a0 = lo_arr[a]
                a1 = hi_arr[a]
                b0 = b1 = b
            elif lb < la:
                top = lb
                a0 = a1 = a
                b0 = lo_arr[b]
                b1 = hi_arr[b]
            else:
                top = la
                a0 = lo_arr[a]
                a1 = hi_arr[a]
                b0 = lo_arr[b]
                b1 = hi_arr[b]
            if top in var_set:
                push((2, a, b, a1, b1))
                push((0, a0, b0))
            else:
                push((1, a, b, top))
                push((0, a1, b1))
                push((0, a0, b0))
        elif tag == 1:
            _, a, b, top = frame
            hi = results.pop()
            lo = results[-1]
            node = lo if lo == hi else mk(top, lo, hi)
            put(a, b, node)
            results[-1] = node
        elif tag == 2:
            _, a, b, a1, b1 = frame
            if results[-1] == TRUE:
                put(a, b, TRUE)
                continue
            push((3, a, b))
            push((0, a1, b1))
        else:
            _, a, b = frame
            hi = results.pop()
            node = apply_or(results[-1], hi)
            put(a, b, node)
            results[-1] = node
    return results[0]


def abstract_interval(
    manager: BDDManager, lower: int, upper: int, variables: Iterable[int]
) -> tuple[int, int]:
    """The paper's interval abstraction ``∀x [l, u] = [∃x l, ∀x u]``
    (Section 3.2.1, Example 3.2).

    Returns the (possibly empty) abstracted interval as a bound pair; the
    result is consistent iff ``∃x l <= ∀x u``.
    """
    cube = manager.intern_cube(variables)
    return exists(manager, lower, cube), forall(manager, upper, cube)
