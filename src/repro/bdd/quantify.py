"""Quantification over BDD variables.

Implements existential and universal abstraction plus the fused
``and_exists`` (relational product) used by image computation, where
conjoining and quantifying in one pass avoids building the full
intermediate conjunction.

Results are cached *persistently* on the manager, keyed by
``(node, cube_id)`` over interned :class:`~repro.bdd.manager.VarCube`
objects — repeated ``∃x f`` / ``∀x f`` over the same variable set (the
``ITE(c_x, f, ∀x f)`` parameterization loops, image iterations) hit the
cache instead of re-walking.  The caches are dropped by
:meth:`BDDManager.clear_caches` and surfaced through
``ManagerStats``/``cache_sizes``.  Like the manager's operator cores,
the walks are iterative (explicit stacks), so deep chain-shaped BDDs do
not hit the interpreter recursion limit.
"""

from __future__ import annotations

from typing import Iterable

from repro.bdd.manager import BDDManager, FALSE, TRUE, VarCube


def exists(
    manager: BDDManager, f: int, variables: "Iterable[int] | VarCube"
) -> int:
    """Existential quantification ``∃ variables . f``."""
    cube = manager.intern_cube(variables)
    var_set = cube.vars
    if not var_set:
        return f
    max_level = cube.max_level
    if f <= 1 or manager._level[f] > max_level:
        return f
    cid = cube.cube_id
    stats = manager._stats
    cache = manager._exists_cache
    cached = cache.get((f, cid))
    if cached is not None:
        if stats is not None:
            stats.exists_hits += 1
        return cached
    level = manager._level
    lo_arr = manager._lo
    hi_arr = manager._hi
    unique = manager._unique
    apply_or = manager.apply_or
    # Tags: 0 expand; 1 rebuild an unquantified level; 2 lo-cofactor of a
    # quantified level done (early-exit on TRUE, else expand hi); 3 both
    # cofactors of a quantified level done (OR them).
    tasks: list[tuple] = [(0, f)]
    push = tasks.append
    results: list[int] = []
    rpush = results.append
    while tasks:
        frame = tasks.pop()
        tag = frame[0]
        if tag == 0:
            n = frame[1]
            if n <= 1 or level[n] > max_level:
                rpush(n)
                continue
            cached = cache.get((n, cid))
            if cached is not None:
                if stats is not None:
                    stats.exists_hits += 1
                rpush(cached)
                continue
            if stats is not None:
                stats.exists_misses += 1
            lvl = level[n]
            if lvl in var_set:
                push((2, n, hi_arr[n]))
                push((0, lo_arr[n]))
            else:
                push((1, n, lvl))
                push((0, hi_arr[n]))
                push((0, lo_arr[n]))
        elif tag == 1:
            _, n, lvl = frame
            hi = results.pop()
            lo = results[-1]
            if lo == hi:
                node = lo
            else:
                ukey = (lvl, lo, hi)
                node = unique.get(ukey)
                if node is None:
                    node = len(level)
                    level.append(lvl)
                    lo_arr.append(lo)
                    hi_arr.append(hi)
                    unique[ukey] = node
                    if stats is not None:
                        stats.inserts += 1
            cache[(n, cid)] = node
            results[-1] = node
        elif tag == 2:
            _, n, hi_child = frame
            if results[-1] == TRUE:
                cache[(n, cid)] = TRUE
                continue
            push((3, n))
            push((0, hi_child))
        else:
            n = frame[1]
            hi = results.pop()
            node = apply_or(results[-1], hi)
            cache[(n, cid)] = node
            results[-1] = node
    return results[0]


def forall(
    manager: BDDManager, f: int, variables: "Iterable[int] | VarCube"
) -> int:
    """Universal quantification ``∀ variables . f``."""
    cube = manager.intern_cube(variables)
    var_set = cube.vars
    if not var_set:
        return f
    max_level = cube.max_level
    if f <= 1 or manager._level[f] > max_level:
        return f
    cid = cube.cube_id
    stats = manager._stats
    cache = manager._forall_cache
    cached = cache.get((f, cid))
    if cached is not None:
        if stats is not None:
            stats.forall_hits += 1
        return cached
    level = manager._level
    lo_arr = manager._lo
    hi_arr = manager._hi
    unique = manager._unique
    apply_and = manager.apply_and
    tasks: list[tuple] = [(0, f)]
    push = tasks.append
    results: list[int] = []
    rpush = results.append
    while tasks:
        frame = tasks.pop()
        tag = frame[0]
        if tag == 0:
            n = frame[1]
            if n <= 1 or level[n] > max_level:
                rpush(n)
                continue
            cached = cache.get((n, cid))
            if cached is not None:
                if stats is not None:
                    stats.forall_hits += 1
                rpush(cached)
                continue
            if stats is not None:
                stats.forall_misses += 1
            lvl = level[n]
            if lvl in var_set:
                push((2, n, hi_arr[n]))
                push((0, lo_arr[n]))
            else:
                push((1, n, lvl))
                push((0, hi_arr[n]))
                push((0, lo_arr[n]))
        elif tag == 1:
            _, n, lvl = frame
            hi = results.pop()
            lo = results[-1]
            if lo == hi:
                node = lo
            else:
                ukey = (lvl, lo, hi)
                node = unique.get(ukey)
                if node is None:
                    node = len(level)
                    level.append(lvl)
                    lo_arr.append(lo)
                    hi_arr.append(hi)
                    unique[ukey] = node
                    if stats is not None:
                        stats.inserts += 1
            cache[(n, cid)] = node
            results[-1] = node
        elif tag == 2:
            _, n, hi_child = frame
            if results[-1] == FALSE:
                cache[(n, cid)] = FALSE
                continue
            push((3, n))
            push((0, hi_child))
        else:
            n = frame[1]
            hi = results.pop()
            node = apply_and(results[-1], hi)
            cache[(n, cid)] = node
            results[-1] = node
    return results[0]


def and_exists(
    manager: BDDManager, f: int, g: int, variables: "Iterable[int] | VarCube"
) -> int:
    """Relational product ``∃ variables . (f & g)`` computed in one pass.

    This is the classic fused operator of symbolic model checking: the
    conjunction is never materialised for subgraphs where quantification
    collapses it first.
    """
    cube = manager.intern_cube(variables)
    var_set = cube.vars
    if not var_set:
        return manager.apply_and(f, g)
    max_level = cube.max_level
    cid = cube.cube_id
    stats = manager._stats
    cache = manager._and_exists_cache
    level = manager._level
    lo_arr = manager._lo
    hi_arr = manager._hi
    unique = manager._unique
    apply_or = manager.apply_or
    apply_and = manager.apply_and
    # Tags: 0 expand a (a, b) product; 1 rebuild an unquantified level;
    # 2 lo-product of a quantified level done (early-exit on TRUE, else
    # expand the hi-product); 3 both products done (OR them).
    tasks: list[tuple] = [(0, f, g)]
    push = tasks.append
    results: list[int] = []
    rpush = results.append
    while tasks:
        frame = tasks.pop()
        tag = frame[0]
        if tag == 0:
            _, a, b = frame
            if a == FALSE or b == FALSE:
                rpush(FALSE)
                continue
            if a == TRUE:
                rpush(TRUE if b == TRUE else exists(manager, b, cube))
                continue
            if b == TRUE:
                rpush(exists(manager, a, cube))
                continue
            la = level[a]
            lb = level[b]
            if la > max_level and lb > max_level:
                # No quantified variable below either operand: the
                # product degenerates to a plain conjunction.
                rpush(apply_and(a, b))
                continue
            if a > b:
                a, b = b, a
                la, lb = lb, la
            key = (a, b, cid)
            cached = cache.get(key)
            if cached is not None:
                if stats is not None:
                    stats.and_exists_hits += 1
                rpush(cached)
                continue
            if stats is not None:
                stats.and_exists_misses += 1
            if la < lb:
                top = la
                a0 = lo_arr[a]
                a1 = hi_arr[a]
                b0 = b1 = b
            elif lb < la:
                top = lb
                a0 = a1 = a
                b0 = lo_arr[b]
                b1 = hi_arr[b]
            else:
                top = la
                a0 = lo_arr[a]
                a1 = hi_arr[a]
                b0 = lo_arr[b]
                b1 = hi_arr[b]
            if top in var_set:
                push((2, key, a1, b1))
                push((0, a0, b0))
            else:
                push((1, key, top))
                push((0, a1, b1))
                push((0, a0, b0))
        elif tag == 1:
            _, key, top = frame
            hi = results.pop()
            lo = results[-1]
            if lo == hi:
                node = lo
            else:
                ukey = (top, lo, hi)
                node = unique.get(ukey)
                if node is None:
                    node = len(level)
                    level.append(top)
                    lo_arr.append(lo)
                    hi_arr.append(hi)
                    unique[ukey] = node
                    if stats is not None:
                        stats.inserts += 1
            cache[key] = node
            results[-1] = node
        elif tag == 2:
            _, key, a1, b1 = frame
            if results[-1] == TRUE:
                cache[key] = TRUE
                continue
            push((3, key))
            push((0, a1, b1))
        else:
            key = frame[1]
            hi = results.pop()
            node = apply_or(results[-1], hi)
            cache[key] = node
            results[-1] = node
    return results[0]


def abstract_interval(
    manager: BDDManager, lower: int, upper: int, variables: Iterable[int]
) -> tuple[int, int]:
    """The paper's interval abstraction ``∀x [l, u] = [∃x l, ∀x u]``
    (Section 3.2.1, Example 3.2).

    Returns the (possibly empty) abstracted interval as a bound pair; the
    result is consistent iff ``∃x l <= ∀x u``.
    """
    cube = manager.intern_cube(variables)
    return exists(manager, lower, cube), forall(manager, upper, cube)
