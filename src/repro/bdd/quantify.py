"""Quantification over BDD variables.

Implements existential and universal abstraction plus the fused
``and_exists`` (relational product) used by image computation, where
conjoining and quantifying in one pass avoids building the full
intermediate conjunction.
"""

from __future__ import annotations

from typing import Iterable

from repro.bdd.manager import BDDManager, FALSE, TRUE


def exists(manager: BDDManager, f: int, variables: Iterable[int]) -> int:
    """Existential quantification ``∃ variables . f``."""
    var_set = frozenset(variables)
    if not var_set:
        return f
    max_level = max(var_set)
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        if node <= 1 or manager.level(node) > max_level:
            return node
        hit = cache.get(node)
        if hit is not None:
            return hit
        level = manager.level(node)
        lo = walk(manager.lo(node))
        hi = walk(manager.hi(node))
        if level in var_set:
            result = manager.apply_or(lo, hi)
        else:
            result = manager._mk(level, lo, hi)
        cache[node] = result
        return result

    return walk(f)


def forall(manager: BDDManager, f: int, variables: Iterable[int]) -> int:
    """Universal quantification ``∀ variables . f``."""
    var_set = frozenset(variables)
    if not var_set:
        return f
    max_level = max(var_set)
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        if node <= 1 or manager.level(node) > max_level:
            return node
        hit = cache.get(node)
        if hit is not None:
            return hit
        level = manager.level(node)
        lo = walk(manager.lo(node))
        hi = walk(manager.hi(node))
        if level in var_set:
            result = manager.apply_and(lo, hi)
        else:
            result = manager._mk(level, lo, hi)
        cache[node] = result
        return result

    return walk(f)


def and_exists(
    manager: BDDManager, f: int, g: int, variables: Iterable[int]
) -> int:
    """Relational product ``∃ variables . (f & g)`` computed in one pass.

    This is the classic fused operator of symbolic model checking: the
    conjunction is never materialised for subgraphs where quantification
    collapses it first.
    """
    var_set = frozenset(variables)
    if not var_set:
        return manager.apply_and(f, g)
    cache: dict[tuple[int, int], int] = {}

    def walk(a: int, b: int) -> int:
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE and b == TRUE:
            return TRUE
        if a == TRUE:
            return exists(manager, b, var_set)
        if b == TRUE:
            return exists(manager, a, var_set)
        if a > b:
            a, b = b, a
        key = (a, b)
        hit = cache.get(key)
        if hit is not None:
            return hit
        level_a = manager.level(a)
        level_b = manager.level(b)
        top = min(level_a, level_b)
        a0, a1 = (manager.lo(a), manager.hi(a)) if level_a == top else (a, a)
        b0, b1 = (manager.lo(b), manager.hi(b)) if level_b == top else (b, b)
        if top in var_set:
            lo = walk(a0, b0)
            if lo == TRUE:
                result = TRUE
            else:
                result = manager.apply_or(lo, walk(a1, b1))
        else:
            result = manager._mk(top, walk(a0, b0), walk(a1, b1))
        cache[key] = result
        return result

    return walk(f, g)


def abstract_interval(
    manager: BDDManager, lower: int, upper: int, variables: Iterable[int]
) -> tuple[int, int]:
    """The paper's interval abstraction ``∀x [l, u] = [∃x l, ∀x u]``
    (Section 3.2.1, Example 3.2).

    Returns the (possibly empty) abstracted interval as a bound pair; the
    result is consistent iff ``∃x l <= ∀x u``.
    """
    var_list = list(variables)
    return exists(manager, lower, var_list), forall(manager, upper, var_list)
