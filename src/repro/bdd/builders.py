"""Builders for structured BDDs: symmetric (weight) functions and
integer-encoding relations.

These are the combinatorial-set helpers of Section 3.5.2: the weight
functions ``w_k(c)`` that constrain how many decision variables are set,
the encoding relation ``K(c, e)`` between decision assignments and binary
counters, and the ``gte``/``equ`` comparators used by dominance pruning.
"""

from __future__ import annotations

from typing import Sequence

from repro.bdd.manager import BDDManager, FALSE, TRUE


def exactly_k(manager: BDDManager, variables: Sequence[int], k: int) -> int:
    """Weight function ``w_k``: true iff exactly ``k`` of ``variables``
    are 1.  Totally symmetric, hence an ``O(n*k)``-node BDD."""
    if k > len(variables):
        return FALSE
    table = weight_functions(manager, variables, k)
    return table[k]


def weight_functions(
    manager: BDDManager, variables: Sequence[int], max_weight: int | None = None
) -> list[int]:
    """All weight functions ``[w_0, w_1, ..., w_m]`` over ``variables``.

    Builds the whole family in one dynamic-programming sweep (the BDDs
    share almost all of their nodes).  ``max_weight`` defaults to
    ``len(variables)``.
    """
    n = len(variables)
    if max_weight is None:
        max_weight = n
    max_weight = min(max_weight, n)
    # Process variables bottom-up (highest level first) so _mk levels are
    # consistent.  counts[j] = BDD over the already-processed suffix that
    # exactly j of those variables are 1.
    ordered = sorted(variables, reverse=True)
    counts = [TRUE] + [FALSE] * max_weight
    for var in ordered:
        new_counts = []
        for j in range(max_weight + 1):
            take = counts[j - 1] if j > 0 else FALSE
            skip = counts[j]
            new_counts.append(manager._mk(var, skip, take) if take != skip else take)
        counts = new_counts
    return counts


def at_most_k(manager: BDDManager, variables: Sequence[int], k: int) -> int:
    """Threshold function: true iff at most ``k`` of ``variables`` are 1."""
    weights = weight_functions(manager, variables, min(k, len(variables)))
    return manager.disjoin(weights[: k + 1])


def encode_int(manager: BDDManager, bits: Sequence[int], value: int) -> int:
    """Minterm ``κ_value(e)``: the cube asserting that the little-endian
    binary counter on ``bits`` equals ``value``."""
    if value >= (1 << len(bits)):
        raise ValueError(f"{value} does not fit in {len(bits)} bits")
    return manager.cube(
        {bit: bool((value >> i) & 1) for i, bit in enumerate(bits)}
    )


def count_relation(
    manager: BDDManager, variables: Sequence[int], bits: Sequence[int]
) -> int:
    """The paper's ``K(c, e) = Σ_i w_i(c) · κ_i(e)`` — relates an
    assignment to the decision variables ``c`` to the binary encoding of
    its weight on the counter bits ``e`` (Section 3.5.2)."""
    if (1 << len(bits)) <= len(variables):
        raise ValueError(
            f"{len(bits)} bits cannot encode weights up to {len(variables)}"
        )
    weights = weight_functions(manager, variables)
    relation = FALSE
    for value, weight in enumerate(weights):
        if weight == FALSE:
            continue
        relation = manager.apply_or(
            relation, manager.apply_and(weight, encode_int(manager, bits, value))
        )
    return relation


def equ(manager: BDDManager, a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
    """Equality relation between two equally wide binary encodings."""
    if len(a_bits) != len(b_bits):
        raise ValueError("encodings must have equal width")
    return manager.conjoin(
        manager.apply_xnor(manager.var(a), manager.var(b))
        for a, b in zip(a_bits, b_bits)
    )


def gte(manager: BDDManager, a_bits: Sequence[int], b_bits: Sequence[int]) -> int:
    """Greater-than-or-equal relation ``a >= b`` between two little-endian
    binary encodings (used by the dominance relation of Section 3.5.2)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("encodings must have equal width")
    # Build LSB-to-MSB: result_so_far holds "a_suffix >= b_suffix".
    result = TRUE
    for a, b in zip(a_bits, b_bits):
        va, vb = manager.var(a), manager.var(b)
        a_gt_b = manager.apply_and(va, manager.negate(vb))
        a_eq_b = manager.apply_xnor(va, vb)
        result = manager.apply_or(a_gt_b, manager.apply_and(a_eq_b, result))
    return result


def decode_int(bits: Sequence[int], assignment: dict[int, bool]) -> int:
    """Inverse of :func:`encode_int` for a model returned by the counting
    helpers: read the little-endian integer off ``assignment``."""
    value = 0
    for i, bit in enumerate(bits):
        if assignment.get(bit, False):
            value |= 1 << i
    return value
