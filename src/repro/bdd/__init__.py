"""From-scratch reduced ordered BDD engine.

The paper's machinery is entirely BDD-based; this subpackage provides the
substrate: a node manager with a shared unique table
(:class:`~repro.bdd.manager.BDDManager`), quantification, composition,
counting, builders for symmetric/arithmetic relations, and a wrapped
:class:`~repro.bdd.function.Function` facade.
"""

from repro.bdd.manager import BDDManager, FALSE, TRUE, VarCube, iter_nodes
from repro.bdd.function import Function, function_vars
from repro.bdd.quantify import exists, forall, and_exists, abstract_interval
from repro.bdd.compose import compose, vector_compose, rename, transfer
from repro.bdd.count import (
    dag_size,
    dag_size_multi,
    support,
    support_multi,
    sat_count,
    pick_one,
    iter_models,
    iter_cubes,
    shortest_cube,
)
from repro.bdd.builders import (
    exactly_k,
    weight_functions,
    at_most_k,
    encode_int,
    decode_int,
    count_relation,
    equ,
    gte,
)
from repro.bdd.dot import to_dot
from repro.bdd.reorder import order_cost, sift_order, reorder

__all__ = [
    "BDDManager",
    "FALSE",
    "TRUE",
    "VarCube",
    "Function",
    "function_vars",
    "iter_nodes",
    "exists",
    "forall",
    "and_exists",
    "abstract_interval",
    "compose",
    "vector_compose",
    "rename",
    "transfer",
    "dag_size",
    "dag_size_multi",
    "support",
    "support_multi",
    "sat_count",
    "iter_cubes",
    "pick_one",
    "iter_models",
    "shortest_cube",
    "exactly_k",
    "weight_functions",
    "at_most_k",
    "encode_int",
    "decode_int",
    "count_relation",
    "equ",
    "gte",
    "to_dot",
    "order_cost",
    "sift_order",
    "reorder",
]
