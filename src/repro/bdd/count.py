"""Counting, support computation and model iteration."""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Optional, Sequence

from repro.bdd.manager import BDDManager, FALSE, TRUE, iter_nodes


def dag_size(manager: BDDManager, root: int) -> int:
    """Number of distinct nodes in the diagram rooted at ``root``
    (terminals included) — the "BDD size" reported in the paper's tables."""
    return sum(1 for _ in iter_nodes(manager, root))


def dag_size_multi(manager: BDDManager, roots: Sequence[int]) -> int:
    """Number of distinct nodes in the shared diagram of several roots."""
    seen: set[int] = set()
    for root in roots:
        for node in iter_nodes(manager, root):
            seen.add(node)
    return len(seen)


def support(manager: BDDManager, root: int) -> set[int]:
    """Set of variables ``root`` structurally depends on."""
    variables: set[int] = set()
    for node in iter_nodes(manager, root):
        if node > 1:
            variables.add(manager.top_var(node))
    return variables


def support_multi(manager: BDDManager, roots: Sequence[int]) -> set[int]:
    """Union of the supports of several roots."""
    variables: set[int] = set()
    for root in roots:
        variables |= support(manager, root)
    return variables


def sat_count(manager: BDDManager, root: int, num_vars: Optional[int] = None) -> int:
    """Number of satisfying assignments over ``num_vars`` variables
    (defaults to all variables declared in the manager)."""
    if num_vars is None:
        num_vars = manager.num_vars
    # Work with the density (fraction of satisfying points), then scale;
    # this avoids tracking per-node level gaps explicitly.
    cache: dict[int, Fraction] = {FALSE: Fraction(0), TRUE: Fraction(1)}

    def density(node: int) -> Fraction:
        hit = cache.get(node)
        if hit is not None:
            return hit
        result = (density(manager.lo(node)) + density(manager.hi(node))) / 2
        cache[node] = result
        return result

    total = density(root) * (2 ** num_vars)
    assert total.denominator == 1
    return int(total)


def pick_one(manager: BDDManager, root: int) -> Optional[dict[int, bool]]:
    """One satisfying partial assignment (``None`` if unsatisfiable).

    Only variables on the chosen path are bound; absent variables may take
    either value.
    """
    if root == FALSE:
        return None
    assignment: dict[int, bool] = {}
    node = root
    while node > 1:
        var = manager.top_var(node)
        if manager.hi(node) != FALSE:
            assignment[var] = True
            node = manager.hi(node)
        else:
            assignment[var] = False
            node = manager.lo(node)
    return assignment


def iter_models(
    manager: BDDManager, root: int, variables: Sequence[int]
) -> Iterator[dict[int, bool]]:
    """Iterate total assignments to ``variables`` that satisfy ``root``.

    ``variables`` must cover the support of ``root``; variables in the list
    but absent from a path are expanded to both polarities, so each yielded
    dict binds every listed variable exactly once.
    """
    order = sorted(variables)
    position = {var: i for i, var in enumerate(order)}
    for node in iter_nodes(manager, root):
        if node > 1 and manager.top_var(node) not in position:
            raise ValueError(
                f"variable {manager.top_var(node)} in support but not listed"
            )

    def recurse(node: int, depth: int) -> Iterator[dict[int, bool]]:
        if node == FALSE:
            return
        if depth == len(order):
            yield {}
            return
        var = order[depth]
        if node > 1 and manager.top_var(node) == var:
            branches = ((False, manager.lo(node)), (True, manager.hi(node)))
        else:
            branches = ((False, node), (True, node))
        for value, child in branches:
            for rest in recurse(child, depth + 1):
                rest[var] = value
                yield rest

    yield from recurse(root, 0)


def iter_cubes(
    manager: BDDManager, root: int, max_cubes: Optional[int] = None
) -> Optional[list[dict[int, bool]]]:
    """Disjoint satisfying cubes of ``root`` — one per BDD path to TRUE.

    Each cube binds only the variables on its path; their disjunction
    (over :meth:`BDDManager.cube`) reconstructs ``root`` exactly, which
    makes this a manager-independent serialisation of a function (the
    parallel cone scheduler ships don't-care sets to workers this way).
    Path counts can blow up on dense functions, so ``max_cubes`` bounds
    the enumeration: ``None`` is returned once the bound is exceeded and
    callers fall back to an under-approximation.
    """
    if root == FALSE:
        return []
    cubes: list[dict[int, bool]] = []
    # Explicit DFS stack of (node, path literals) — no Python recursion.
    stack: list[tuple[int, tuple[tuple[int, bool], ...]]] = [(root, ())]
    while stack:
        node, path = stack.pop()
        if node == FALSE:
            continue
        if node == TRUE:
            cubes.append(dict(path))
            if max_cubes is not None and len(cubes) > max_cubes:
                return None
            continue
        var = manager.top_var(node)
        stack.append((manager.lo(node), path + ((var, False),)))
        stack.append((manager.hi(node), path + ((var, True),)))
    return cubes


def shortest_cube(manager: BDDManager, root: int) -> Optional[dict[int, bool]]:
    """A satisfying cube with the fewest literals (``None`` if UNSAT).

    Used to pick decomposition-variable assignments that abstract as many
    variables as possible.
    """
    if root == FALSE:
        return None
    cache: dict[int, tuple[int, dict[int, bool]]] = {TRUE: (0, {})}

    def best(node: int) -> Optional[tuple[int, dict[int, bool]]]:
        if node == FALSE:
            return None
        hit = cache.get(node)
        if hit is not None:
            return hit
        var = manager.top_var(node)
        candidates = []
        lo_best = best(manager.lo(node))
        if lo_best is not None:
            candidates.append((lo_best[0] + 1, {**lo_best[1], var: False}))
        hi_best = best(manager.hi(node))
        if hi_best is not None:
            candidates.append((hi_best[0] + 1, {**hi_best[1], var: True}))
        result = min(candidates, key=lambda item: item[0])
        cache[node] = result
        return result

    found = best(root)
    assert found is not None
    return found[1]
