"""Rendering and persistence of observability snapshots.

:func:`write_report` serialises an :func:`repro.obs.report` snapshot to
JSON; :func:`render_profile` turns one into the human-readable
phase-time / cache-efficiency table printed by ``repro profile`` and the
``--profile`` CLI flag.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.obs.registry import report as _snapshot

#: Cache name -> (hit counter, miss counter) suffixes under the ``bdd.``
#: namespace, as emitted by ``repro.bdd.manager``.
_CACHE_OPS = (
    "ite",
    "and",
    "or",
    "xor",
    "not",
    "exists",
    "forall",
    "and_exists",
)


def write_report(
    path: str | Path,
    report: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Write ``report`` (default: a fresh snapshot) as JSON to ``path``.

    ``extra`` entries are merged under the top-level ``"run"`` key —
    CLI commands use it for workload identification and headline results.
    Returns the written dictionary.
    """
    if report is None:
        report = _snapshot()
    if extra:
        run = dict(report.get("run") or {})
        run.update(extra)
        report = {**report, "run": run}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report


def cache_efficiency(report: dict[str, Any]) -> dict[str, dict[str, float]]:
    """Per-operation cache hit/miss/rate extracted from the ``bdd``
    family of a snapshot (empty when no manager was tracked)."""
    counters = report.get("counters", {})
    result: dict[str, dict[str, float]] = {}
    for op in _CACHE_OPS:
        hits = counters.get(f"bdd.cache.{op}.hits", 0)
        misses = counters.get(f"bdd.cache.{op}.misses", 0)
        lookups = hits + misses
        if lookups == 0:
            continue
        result[op] = {
            "hits": hits,
            "misses": misses,
            "rate": hits / lookups,
        }
    return result


def pipeline_passes(report: dict[str, Any]) -> list[dict[str, Any]]:
    """The ``pipeline.pass`` events of a snapshot, in execution order —
    one row per completed pass with its wall time and whether a resource
    budget was exhausted at that boundary."""
    return [
        event
        for event in report.get("events", [])
        if event.get("name") == "pipeline.pass"
    ]


def render_profile(report: dict[str, Any]) -> str:
    """Phase-time and cache-efficiency table for one snapshot."""
    lines: list[str] = []
    spans = report.get("spans", {})
    if spans:
        lines.append("phase timings")
        lines.append(f"  {'span':<48} {'count':>7} {'total(s)':>9} {'mean(ms)':>9}")
        grand_total = sum(
            stat["total"] for path, stat in spans.items() if "/" not in path
        )
        for path, stat in sorted(
            spans.items(), key=lambda item: -item[1]["total"]
        ):
            depth = path.count("/")
            label = ("  " * depth) + path.split("/")[-1]
            share = (
                f" {100 * stat['total'] / grand_total:5.1f}%"
                if grand_total and depth == 0
                else ""
            )
            lines.append(
                f"  {label:<48} {stat['count']:>7} {stat['total']:>9.3f} "
                f"{1000 * stat['mean']:>9.3f}{share}"
            )
    passes = pipeline_passes(report)
    if passes:
        lines.append("")
        lines.append("pipeline passes")
        with_sizes = any("literals" in row for row in passes)
        header = f"  {'#':>3} {'pass':<16} {'elapsed(s)':>11}"
        if with_sizes:
            header += f" {'nodes':>8} {'Δnodes':>8} {'lits':>8} {'Δlits':>8}"
        header += f" {'budget':>10}"
        lines.append(header)
        for row in passes:
            status = "EXHAUSTED" if row.get("exhausted") else "ok"
            line = (
                f"  {int(row['index']):>3} {row['pass_name']:<16} "
                f"{row['elapsed']:>11.3f}"
            )
            if with_sizes:
                def cell(key: str, signed: bool = False) -> str:
                    value = row.get(key)
                    if value is None:
                        return f"{'-':>8}"
                    return f"{int(value):>+8d}" if signed else f"{int(value):>8d}"

                line += (
                    f" {cell('nodes')} {cell('nodes_delta', True)}"
                    f" {cell('literals')} {cell('literals_delta', True)}"
                )
            lines.append(line + f" {status:>10}")
    efficiency = cache_efficiency(report)
    if efficiency:
        lines.append("")
        lines.append("BDD cache efficiency")
        lines.append(f"  {'op':<6} {'hits':>12} {'misses':>12} {'hit rate':>9}")
        for op, row in efficiency.items():
            lines.append(
                f"  {op:<6} {int(row['hits']):>12} {int(row['misses']):>12} "
                f"{100 * row['rate']:>8.1f}%"
            )
        gauges = report.get("gauges", {})
        if "bdd.managers.total" in gauges:
            lines.append(
                f"  managers={int(gauges['bdd.managers.total'])} "
                f"live={int(gauges.get('bdd.managers.live', 0))} "
                f"max_manager_nodes={int(gauges.get('bdd.nodes.peak', 0))} "
                f"live_nodes={int(gauges.get('bdd.nodes.live', 0))}"
            )
    families = report.get("families", {})
    interesting = {
        family: data
        for family, data in sorted(families.items())
        if family != "bdd" and data.get("counters")
    }
    if interesting:
        lines.append("")
        lines.append("counters")
        for family, data in interesting.items():
            for name, value in data["counters"].items():
                lines.append(f"  {name:<48} {value:>12g}")
    dropped = report.get("counters", {}).get("obs.events_dropped")
    if dropped:
        lines.append("")
        lines.append(
            f"WARNING: event buffer wrapped — {int(dropped)} oldest "
            f"event(s) dropped (obs.events_dropped)"
        )
    if not lines:
        lines.append("(no metrics collected — was instrumentation enabled?)")
    return "\n".join(lines)
