"""Observability substrate: metrics, phase-scoped tracing and run reports.

Usage pattern::

    from repro import obs

    obs.enable()                       # before building managers
    with obs.span("myphase"):
        obs.inc("myfamily.widgets")
        obs.observe("myfamily.size", 42)
    report = obs.report()              # JSON-serialisable dict

Everything is a no-op while disabled (the default), so library code is
instrumented unconditionally.  See :mod:`repro.obs.registry` for the
data model and :mod:`repro.obs.reporting` for rendering/persistence.

The *live telemetry* layer — :mod:`repro.obs.bus` (cross-process worker
event stream), :mod:`repro.obs.openmetrics` (OpenMetrics exposition)
and :mod:`repro.obs.logging` (structured JSONL run log) — is
deliberately **not** re-exported here: those modules are imported only
by the CLI when their flags are given, and engine layers reach them
solely through ``sys.modules.get(...)``, so a run without the flags
never loads them at all.
"""

from repro.obs.registry import (
    Histogram,
    Registry,
    SpanStat,
    current_span_path,
    disable,
    enable,
    enabled,
    event,
    inc,
    observe,
    registry,
    report,
    reset,
    scope,
    set_gauge,
    span,
    track_bdd_manager,
)
from repro.obs.reporting import cache_efficiency, render_profile, write_report
from repro.obs.trace import TraceRecorder, tracing
from repro.obs.monitor import RuntimeMonitor
from repro.obs.crashdump import set_crash_context, write_crash_bundle

__all__ = [
    "Histogram",
    "Registry",
    "RuntimeMonitor",
    "SpanStat",
    "TraceRecorder",
    "cache_efficiency",
    "current_span_path",
    "disable",
    "enable",
    "enabled",
    "event",
    "inc",
    "observe",
    "registry",
    "render_profile",
    "report",
    "reset",
    "scope",
    "set_crash_context",
    "set_gauge",
    "span",
    "track_bdd_manager",
    "tracing",
    "write_crash_bundle",
    "write_report",
]
