"""Observability substrate: metrics, phase-scoped tracing and run reports.

Usage pattern::

    from repro import obs

    obs.enable()                       # before building managers
    with obs.span("myphase"):
        obs.inc("myfamily.widgets")
        obs.observe("myfamily.size", 42)
    report = obs.report()              # JSON-serialisable dict

Everything is a no-op while disabled (the default), so library code is
instrumented unconditionally.  See :mod:`repro.obs.registry` for the
data model and :mod:`repro.obs.reporting` for rendering/persistence.
"""

from repro.obs.registry import (
    Histogram,
    Registry,
    SpanStat,
    current_span_path,
    disable,
    enable,
    enabled,
    event,
    inc,
    observe,
    registry,
    report,
    reset,
    scope,
    set_gauge,
    span,
    track_bdd_manager,
)
from repro.obs.reporting import cache_efficiency, render_profile, write_report
from repro.obs.trace import TraceRecorder, tracing
from repro.obs.monitor import RuntimeMonitor
from repro.obs.crashdump import set_crash_context, write_crash_bundle

__all__ = [
    "Histogram",
    "Registry",
    "RuntimeMonitor",
    "SpanStat",
    "TraceRecorder",
    "cache_efficiency",
    "current_span_path",
    "disable",
    "enable",
    "enabled",
    "event",
    "inc",
    "observe",
    "registry",
    "render_profile",
    "report",
    "reset",
    "scope",
    "set_crash_context",
    "set_gauge",
    "span",
    "track_bdd_manager",
    "tracing",
    "write_crash_bundle",
    "write_report",
]
