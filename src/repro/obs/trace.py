"""Per-instance trace recording: span timelines you can replay.

The :mod:`repro.obs.registry` keeps *aggregates* (one
:class:`~repro.obs.registry.SpanStat` per span path) — great for a
profile table, useless for answering "when did the run stall?" or "which
pass was live when the governor latched?".  This module adds an opt-in
:class:`TraceRecorder`: a bounded ring buffer of begin/end/instant/
counter records with monotonic microsecond timestamps and thread ids,
exportable as

* **Chrome trace-event JSON** — loadable directly in Perfetto or
  ``chrome://tracing`` (``{"traceEvents": [...]}`` with ``B``/``E``
  duration events, ``i`` instants and ``C`` counter tracks), and
* **JSONL** — one record per line, streaming-friendly for external
  tooling (convert back with ``repro trace FILE --convert OUT``).

Install a recorder with :func:`install` (or the :func:`tracing` context
manager) and the registry's span/event machinery mirrors every span
begin/end and obs event into it; the :class:`~repro.obs.monitor.
RuntimeMonitor` feeds counter samples the same way.  Recording costs one
lock acquisition per record and is completely off (a single ``None``
check) when no recorder is installed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Optional

# NB: ``from repro.obs import registry`` would resolve to the accessor
# *function* the package re-exports, not the module — import the needed
# names straight from the submodule instead.
from repro.obs.registry import scope as _obs_scope
from repro.obs.registry import set_tracer as _set_tracer
from repro.obs.registry import tracer as _get_tracer

#: Default ring-buffer capacity (records, oldest dropped first).
DEFAULT_CAPACITY = 200_000


class TraceRecorder:
    """Bounded in-memory recorder of trace-event records.

    Records are plain dicts in Chrome trace-event shape (``ph``/``ts``/
    ``pid``/``tid``/``name`` plus optional ``args``); timestamps are
    microseconds on a monotonic clock whose zero is the recorder's
    construction time.  The buffer is a ring: when ``capacity`` is
    exceeded the oldest records are dropped and :attr:`dropped` counts
    them, so a multi-hour run keeps its *tail* — the part you need when
    it dies.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.pid = os.getpid()
        self.dropped = 0
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._epoch_perf = time.perf_counter()
        self._epoch_wall = time.time()

    # -- recording ------------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since the recorder was created (monotonic)."""
        return (time.perf_counter() - self._epoch_perf) * 1e6

    def _append(self, record: dict[str, Any]) -> None:
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self.dropped += 1
            self._records.append(record)

    def begin(self, name: str, args: Optional[dict[str, Any]] = None) -> None:
        """Record the opening edge of a duration span on this thread."""
        record = {
            "ph": "B",
            "ts": round(self.now_us(), 3),
            "pid": self.pid,
            "tid": threading.get_ident(),
            "name": name,
        }
        if args:
            record["args"] = args
        self._append(record)

    def end(self, name: str) -> None:
        """Record the closing edge of the innermost ``name`` span."""
        self._append(
            {
                "ph": "E",
                "ts": round(self.now_us(), 3),
                "pid": self.pid,
                "tid": threading.get_ident(),
                "name": name,
            }
        )

    def instant(self, name: str, args: Optional[dict[str, Any]] = None) -> None:
        """Record a point-in-time event (rendered as an arrow/marker)."""
        record = {
            "ph": "i",
            "ts": round(self.now_us(), 3),
            "pid": self.pid,
            "tid": threading.get_ident(),
            "name": name,
            "s": "t",
        }
        if args:
            record["args"] = args
        self._append(record)

    def emit_external_span(
        self,
        name: str,
        wall_start: float,
        duration_s: float,
        tid: int,
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """Record a span measured in *another* process (a parallel
        worker) on track ``tid``.

        ``wall_start`` is a ``time.time()`` epoch timestamp from the
        worker; it is aligned to this recorder's timeline via the wall
        clock captured at construction, so worker spans interleave
        correctly with the parent's monotonic spans (modulo wall-clock
        skew, which is negligible on one host)."""
        ts = max(0.0, (wall_start - self._epoch_wall) * 1e6)
        begin: dict[str, Any] = {
            "ph": "B",
            "ts": round(ts, 3),
            "pid": self.pid,
            "tid": tid,
            "name": name,
        }
        if args:
            begin["args"] = args
        self._append(begin)
        self._append(
            {
                "ph": "E",
                "ts": round(ts + max(0.0, duration_s) * 1e6, 3),
                "pid": self.pid,
                "tid": tid,
                "name": name,
            }
        )

    def counter(self, name: str, values: dict[str, float]) -> None:
        """Record a sample on counter track ``name`` (one series per
        key) — Perfetto renders these as stacked area charts."""
        self._append(
            {
                "ph": "C",
                "ts": round(self.now_us(), 3),
                "pid": self.pid,
                "tid": threading.get_ident(),
                "name": name,
                "args": dict(values),
            }
        )

    # -- access / export ------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Snapshot of the buffered records, oldest first."""
        with self._lock:
            return list(self._records)

    def tail(self, count: int = 200) -> list[dict[str, Any]]:
        """The most recent ``count`` records (crash-bundle fodder)."""
        with self._lock:
            if count >= len(self._records):
                return list(self._records)
            return list(self._records)[-count:]

    def metadata(self) -> dict[str, Any]:
        """Recorder provenance embedded in exports."""
        return {
            "pid": self.pid,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "epoch_unix": self._epoch_wall,
        }

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event JSON object for this buffer."""
        return records_to_chrome(self.records(), metadata=self.metadata())

    def write(self, path: str | Path) -> Path:
        """Write the buffer to ``path``: JSONL when the suffix is
        ``.jsonl``, Chrome trace-event JSON otherwise."""
        target = Path(path)
        if target.suffix == ".jsonl":
            return self.write_jsonl(target)
        return self.write_chrome(target)

    def write_chrome(self, path: str | Path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")
        return target

    def write_jsonl(self, path: str | Path) -> Path:
        """One JSON record per line; the first line is a ``repro.trace``
        metadata record so converters can recover provenance."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            meta = {
                "ph": "M",
                "ts": 0,
                "pid": self.pid,
                "tid": 0,
                "name": "repro.trace",
                "args": self.metadata(),
            }
            handle.write(json.dumps(meta) + "\n")
            for record in self.records():
                handle.write(json.dumps(record) + "\n")
        return target


# ---------------------------------------------------------------------------
# Global install (the registry mirrors spans/events into the recorder)
# ---------------------------------------------------------------------------


def install(recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Install ``recorder`` (default: a fresh one) as the process-wide
    trace sink.  Spans are only recorded while :func:`repro.obs.enable`
    is on — tracing rides on the same switch as the metrics."""
    if recorder is None:
        recorder = TraceRecorder()
    _set_tracer(recorder)
    return recorder


def uninstall() -> Optional[TraceRecorder]:
    """Remove and return the installed recorder (``None`` if absent)."""
    recorder = _get_tracer()
    _set_tracer(None)
    return recorder


def active() -> Optional[TraceRecorder]:
    """The installed recorder, or ``None``."""
    return _get_tracer()


class tracing:
    """Context manager: install a recorder (and optionally enable obs)
    for a block, restoring the previous state on exit::

        with obs.tracing() as recorder:
            run_workload()
        recorder.write("run.trace")
    """

    def __init__(
        self,
        recorder: Optional[TraceRecorder] = None,
        capacity: int = DEFAULT_CAPACITY,
        enable_obs: bool = True,
    ) -> None:
        self.recorder = recorder or TraceRecorder(capacity)
        self._enable_obs = enable_obs
        self._scope: Optional[_obs_scope] = None
        self._previous: Optional[TraceRecorder] = None

    def __enter__(self) -> TraceRecorder:
        self._previous = _get_tracer()
        _set_tracer(self.recorder)
        if self._enable_obs:
            self._scope = _obs_scope()
            self._scope.__enter__()
        return self.recorder

    def __exit__(self, *exc: object) -> bool:
        if self._scope is not None:
            self._scope.__exit__(*exc)
        _set_tracer(self._previous)
        return False


# ---------------------------------------------------------------------------
# Loading, conversion and summarisation (the `repro trace` subcommand)
# ---------------------------------------------------------------------------


def records_to_chrome(
    records: Iterable[dict[str, Any]],
    metadata: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Wrap raw records in the Chrome trace-event envelope, prepending
    process/thread-name metadata events so viewers label the tracks."""
    records = [r for r in records if r.get("ph") != "M"]
    events: list[dict[str, Any]] = []
    pid = records[0]["pid"] if records else os.getpid()
    events.append(
        {
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    )
    for tid in sorted({r["tid"] for r in records}):
        events.append(
            {
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"thread-{tid}"},
            }
        )
    events.extend(records)
    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = metadata
    return payload


def load_trace(path: str | Path) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Read a trace file in either format.

    Returns ``(records, metadata)`` where ``records`` excludes ``M``
    metadata events.  Chrome files are detected by their ``{`` first
    byte + ``traceEvents`` key; everything else is parsed as JSONL.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    metadata: dict[str, Any] = {}
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            metadata = dict(payload.get("otherData") or {})
            records = [
                r for r in payload["traceEvents"] if r.get("ph") != "M"
            ]
            return records, metadata
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("ph") == "M":
            if record.get("name") == "repro.trace":
                metadata = dict(record.get("args") or {})
            continue
        records.append(record)
    return records, metadata


def summarize(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Timeline statistics for a record list.

    Walks each thread's ``B``/``E`` stream with an explicit stack and
    accumulates per-name totals, *self time* (duration minus nested
    children), instant-event and counter-sample counts.  ``B`` records
    whose ``E`` never arrived (the run died inside them) are reported
    under ``"unclosed"``; ``E`` records whose ``B`` was dropped by the
    ring buffer count as ``"orphan_ends"``.
    """
    spans: dict[str, dict[str, Any]] = {}
    stacks: dict[int, list[dict[str, Any]]] = {}
    counters: dict[str, int] = {}
    instants: dict[str, int] = {}
    orphan_ends = 0
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    for record in records:
        ts = float(record.get("ts", 0.0))
        if first_ts is None or ts < first_ts:
            first_ts = ts
        if last_ts is None or ts > last_ts:
            last_ts = ts
        ph = record.get("ph")
        tid = record.get("tid", 0)
        name = record.get("name", "?")
        if ph == "B":
            stacks.setdefault(tid, []).append(
                {"name": name, "start": ts, "child": 0.0}
            )
        elif ph == "E":
            stack = stacks.get(tid)
            if not stack or stack[-1]["name"] != name:
                # Tolerate an orphan E whose B fell off the ring buffer
                # (or interleaved nesting from hand-written traces).
                while stack and stack[-1]["name"] != name:
                    stack.pop()
                if not stack:
                    orphan_ends += 1
                    continue
            frame = stack.pop()
            duration = ts - frame["start"]
            stat = spans.setdefault(
                name,
                {"count": 0, "total_us": 0.0, "self_us": 0.0, "max_us": 0.0},
            )
            stat["count"] += 1
            stat["total_us"] += duration
            stat["self_us"] += duration - frame["child"]
            if duration > stat["max_us"]:
                stat["max_us"] = duration
            if stack:
                stack[-1]["child"] += duration
        elif ph == "C":
            counters[name] = counters.get(name, 0) + 1
        elif ph == "i":
            instants[name] = instants.get(name, 0) + 1
    unclosed = [
        {"tid": tid, "name": frame["name"], "start_us": frame["start"]}
        for tid, stack in stacks.items()
        for frame in stack
    ]
    return {
        "records": len(records),
        "duration_us": (last_ts - first_ts) if records else 0.0,
        "tids": sorted(stacks.keys() | {r.get("tid", 0) for r in records}),
        "spans": spans,
        "counters": counters,
        "instants": instants,
        "unclosed": unclosed,
        "orphan_ends": orphan_ends,
    }


def render_summary(
    summary: dict[str, Any],
    metadata: Optional[dict[str, Any]] = None,
    top: int = 10,
) -> str:
    """Human-readable digest of :func:`summarize` output."""
    lines: list[str] = []
    duration_ms = summary["duration_us"] / 1000.0
    lines.append(
        f"{summary['records']} records over {duration_ms:.1f}ms on "
        f"{len(summary['tids'])} thread(s)"
    )
    if metadata:
        dropped = metadata.get("dropped", 0)
        if dropped:
            lines.append(f"ring buffer dropped {dropped} oldest record(s)")
    spans = summary["spans"]
    if spans:
        lines.append("")
        lines.append(f"top spans by self time (of {len(spans)})")
        lines.append(
            f"  {'span':<40} {'count':>7} {'self(ms)':>10} {'total(ms)':>10} "
            f"{'max(ms)':>9}"
        )
        ranked = sorted(spans.items(), key=lambda item: -item[1]["self_us"])
        for name, stat in ranked[:top]:
            lines.append(
                f"  {name:<40} {stat['count']:>7} "
                f"{stat['self_us'] / 1000:>10.3f} "
                f"{stat['total_us'] / 1000:>10.3f} "
                f"{stat['max_us'] / 1000:>9.3f}"
            )
    if summary["counters"]:
        lines.append("")
        lines.append("counter tracks")
        for name, count in sorted(summary["counters"].items()):
            lines.append(f"  {name:<40} {count:>7} sample(s)")
    if summary["instants"]:
        lines.append("")
        lines.append("instant events")
        for name, count in sorted(summary["instants"].items()):
            lines.append(f"  {name:<40} {count:>7}")
    if summary["unclosed"]:
        lines.append("")
        lines.append("unclosed spans (run ended inside them)")
        for frame in summary["unclosed"]:
            lines.append(f"  tid {frame['tid']}: {frame['name']}")
    if summary["orphan_ends"]:
        lines.append(
            f"  ({summary['orphan_ends']} end record(s) whose begin was "
            f"dropped by the ring buffer)"
        )
    return "\n".join(lines)
