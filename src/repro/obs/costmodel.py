"""Profile-guided cone cost model for parallel dispatch.

The parallel decompose pass splits Algorithm 1's cone loop into
independent :class:`~repro.synth.conetask.ConeTask` shards.  With a
process pool, *dispatch order* determines makespan: submitting the
longest cones first (classic LPT — longest processing time first) keeps
workers busy at the tail instead of waiting on one late straggler that
happened to sort last in plan order.

This module predicts per-cone cost from the run ledger's history:

* exact hits — the cone's structural
  :meth:`~repro.synth.conetask.ConeTask.task_key` was seen before, use
  the mean of its recorded worker-measured elapsed times;
* bucket fallback — never-seen cones borrow the mean elapsed of cones
  with the same input count (support size is the dominant cost driver
  for BDD collapse + bi-decomposition);
* cold start — no history at all predicts 0.0 for everything, and
  :meth:`ConeCostModel.order` degrades to the identity permutation, i.e.
  exactly the old static plan order.

Ordering is used **only for dispatch**.  The scheduler's merge remains
plan-ordered, so ``workers=N`` stays bit-identical to ``workers=1``
whether or not a model is loaded — the determinism goldens enforce it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.ledger import RunLedger
    from repro.synth.conetask import ConeTask


class ConeCostModel:
    """Predicted seconds per cone, learned from ledger history.

    ``exact`` maps structural task keys to mean elapsed seconds;
    ``buckets`` maps cone-input counts to mean elapsed seconds for the
    fallback.  Both may be empty.
    """

    def __init__(
        self,
        exact: Optional[dict[str, float]] = None,
        buckets: Optional[dict[int, float]] = None,
    ) -> None:
        self.exact = dict(exact or {})
        self.buckets = {int(k): float(v) for k, v in (buckets or {}).items()}

    def __bool__(self) -> bool:
        return bool(self.exact) or bool(self.buckets)

    def __len__(self) -> int:
        return len(self.exact)

    @classmethod
    def from_ledger(cls, ledger: "RunLedger | str") -> "ConeCostModel":
        """Build from a :class:`~repro.obs.ledger.RunLedger` (or a path
        to one).  A missing/empty ledger yields an empty model."""
        from repro.obs.ledger import LedgerError, RunLedger

        close = False
        if not hasattr(ledger, "cone_costs"):
            try:
                ledger = RunLedger(ledger, readonly=True)
            except LedgerError:
                return cls()
            close = True
        try:
            exact = {
                key: stats["mean"]
                for key, stats in ledger.cone_costs().items()
            }
            buckets = ledger.input_bucket_costs()
        finally:
            if close:
                ledger.close()
        return cls(exact=exact, buckets=buckets)

    def predict(self, task: "ConeTask") -> float:
        """Predicted seconds for one task (0.0 when nothing is known)."""
        key = task.task_key()
        if key in self.exact:
            return self.exact[key]
        n_inputs = len(task.slice.get("inputs", []))
        return self.buckets.get(n_inputs, 0.0)

    def order(self, tasks: Sequence["ConeTask"]) -> list[int]:
        """LPT dispatch permutation: indices into ``tasks`` sorted by
        descending predicted cost, plan index as the stable tie-break.
        With no history this is the identity — static plan order."""
        if not self:
            return list(range(len(tasks)))
        costs = [self.predict(task) for task in tasks]
        return sorted(range(len(tasks)), key=lambda i: (-costs[i], i))

    def describe(self) -> dict[str, Any]:
        """JSON-friendly summary (for artifacts and status files)."""
        return {
            "exact_keys": len(self.exact),
            "buckets": len(self.buckets),
            "loaded": bool(self),
        }
