"""Run ledger: persistent, append-only cross-run telemetry.

PRs 1 and 4 made a *single* run observable — metrics, traces, a status
heartbeat, crash bundles — but every record died with the process.  The
ledger is the cross-run memory: an SQLite database (WAL-mode, safe for
concurrent appenders) holding one row per run, per pipeline pass, and
per decomposed cone, so tooling can compare run N against run N-1 and
the parallel scheduler can learn per-cone costs from history.

Three tables:

``runs``
    One row per CLI invocation: command, argv, input path, a canonical
    netlist signature, a config hash, worker count, wall time, peak BDD
    nodes, literal counts before/after, degradation counts, and whether
    obs instrumentation was live (timings from instrumented runs are not
    comparable with uninstrumented ones — same rule as the bench gate).
``passes``
    One row per completed pipeline pass (name, elapsed, exhausted flag),
    appended *at the pass boundary* so a crashed run still shows how far
    it got.
``cones``
    One row per cone the decompose loop processed: the structural
    :meth:`~repro.synth.conetask.ConeTask.task_key` (known before
    dispatch — what the cost model predicts by), the exact
    function-canonical interval ``signature`` computed by the worker
    from its BDD (the key a future cross-run cone cache needs), the
    action taken, and the worker-measured elapsed time that feeds the
    LPT dispatch order.

Everything here is **off by default**: no CLI flag, no import, no I/O.
The engine layers reach the ledger only through :func:`active_run` via a
``sys.modules`` lookup, so a run without ``--ledger`` never even imports
this module (``benchmarks/bench_ledger.py`` asserts exactly that).

The JSONL export (:meth:`RunLedger.export_jsonl`) is the artifact form:
one self-contained JSON object per run, nested passes and cones
included, for CI uploads and offline diffing.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
import uuid
from pathlib import Path
from typing import Any, Iterable, Optional

SCHEMA_VERSION = 1

#: How long a writer waits on a locked database before failing (seconds).
#: Two processes appending to the same ledger (parallel workers, two
#: overlapping CLI runs) serialise on this instead of corrupting it.
BUSY_TIMEOUT = 10.0

_RUN_FIELDS = (
    "wall",
    "peak_nodes",
    "literals_before",
    "literals_after",
    "area",
    "delay",
    "latches",
    "decomposed",
    "degraded",
    "degraded_cones",
)


class LedgerError(RuntimeError):
    """A ledger file that cannot be opened or read (missing, corrupt, or
    not an SQLite database)."""


def netlist_signature(network: Any) -> str:
    """Canonical signature of a network's structure (sha256 over the
    deterministic :func:`~repro.engine.checkpoint.network_to_dict` dump).
    Two runs over the same design get the same signature, which is what
    lets ``repro history`` group trajectories per design."""
    from repro.engine.checkpoint import network_to_dict

    payload = json.dumps(
        network_to_dict(network), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def config_hash(options: Any, pipeline_passes: Optional[list[str]] = None) -> str:
    """Hash of the synthesis configuration (options dict + pass list), so
    history comparisons can tell "same design, different knobs" apart
    from a genuine regression."""
    data = {
        "options": options.to_dict() if hasattr(options, "to_dict") else options,
        "passes": list(pipeline_passes or []),
    }
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class RunLedger:
    """Append-only SQLite store of run/pass/cone telemetry.

    ``RunLedger(path)`` creates the file (and schema) when missing;
    ``RunLedger(path, readonly=True)`` refuses to create and raises
    :class:`LedgerError` on a missing or corrupt file — the mode the
    ``repro history`` commands use.
    """

    def __init__(
        self,
        path: str | Path,
        readonly: bool = False,
        busy_timeout: float = BUSY_TIMEOUT,
    ) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly and not self.path.exists():
            raise LedgerError(f"no ledger at {self.path}")
        try:
            if readonly:
                self._conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True,
                    timeout=busy_timeout,
                )
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._conn = sqlite3.connect(self.path, timeout=busy_timeout)
            self._conn.row_factory = sqlite3.Row
            if not readonly:
                # WAL lets a reader (history, a dashboard) coexist with a
                # live appender; busy_timeout makes concurrent appenders
                # queue instead of erroring.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute(
                    f"PRAGMA busy_timeout={int(busy_timeout * 1000)}"
                )
                self._ensure_schema()
            else:
                self._probe()
        except sqlite3.Error as exc:
            raise LedgerError(
                f"{self.path} is not a readable run ledger: {exc}"
            ) from exc

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def _ensure_schema(self) -> None:
        with self._conn:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS meta (
                    key TEXT PRIMARY KEY, value TEXT);
                CREATE TABLE IF NOT EXISTS runs (
                    id TEXT PRIMARY KEY,
                    started_at REAL NOT NULL,
                    finished_at REAL,
                    status TEXT NOT NULL DEFAULT 'running',
                    command TEXT,
                    argv TEXT,
                    input TEXT,
                    netlist_signature TEXT,
                    config_hash TEXT,
                    workers INTEGER,
                    instrumented INTEGER,
                    wall REAL,
                    peak_nodes INTEGER,
                    literals_before INTEGER,
                    literals_after INTEGER,
                    area REAL,
                    delay REAL,
                    latches INTEGER,
                    decomposed INTEGER,
                    degraded INTEGER,
                    degraded_cones INTEGER,
                    extra TEXT);
                CREATE TABLE IF NOT EXISTS passes (
                    seq INTEGER PRIMARY KEY AUTOINCREMENT,
                    run_id TEXT NOT NULL,
                    idx INTEGER NOT NULL,
                    pass TEXT NOT NULL,
                    elapsed REAL,
                    exhausted INTEGER DEFAULT 0);
                CREATE TABLE IF NOT EXISTS cones (
                    seq INTEGER PRIMARY KEY AUTOINCREMENT,
                    run_id TEXT NOT NULL,
                    sink TEXT NOT NULL,
                    task_key TEXT,
                    signature TEXT,
                    cone_inputs INTEGER,
                    action TEXT,
                    elapsed REAL,
                    tree_cost INTEGER,
                    original_cost INTEGER,
                    pid INTEGER);
                CREATE INDEX IF NOT EXISTS idx_passes_run ON passes(run_id);
                CREATE INDEX IF NOT EXISTS idx_cones_run ON cones(run_id);
                CREATE INDEX IF NOT EXISTS idx_cones_key ON cones(task_key);
                """
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES "
                "('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        # Additive migration: per-pass network metrics (JSON of node/
        # literal/latch counts and deltas).  Purely extra data — readers
        # of older files see NULL — so the schema version is unchanged
        # and pre-existing ledgers upgrade in place.
        try:
            with self._conn:
                self._conn.execute(
                    "ALTER TABLE passes ADD COLUMN metrics TEXT"
                )
        except sqlite3.OperationalError:
            pass  # column already present
        # Additive migration: the decomposition backend that handled
        # each cone (bdd / sat-cegar; NULL in pre-backend ledgers).
        try:
            with self._conn:
                self._conn.execute(
                    "ALTER TABLE cones ADD COLUMN backend TEXT"
                )
        except sqlite3.OperationalError:
            pass  # column already present

    def _probe(self) -> None:
        """Fail fast (``LedgerError`` via the caller) on a non-ledger
        file opened for reading."""
        rows = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table'"
        ).fetchall()
        names = {row["name"] for row in rows}
        if "runs" not in names:
            raise sqlite3.DatabaseError("missing 'runs' table")

    # -- writing --------------------------------------------------------

    def begin_run(
        self,
        command: str,
        argv: Optional[list[str]] = None,
        input: Optional[str] = None,
        netlist_signature: Optional[str] = None,
        config_hash: Optional[str] = None,
        workers: int = 0,
        instrumented: bool = False,
        extra: Optional[dict[str, Any]] = None,
    ) -> str:
        run_id = uuid.uuid4().hex[:12]
        with self._conn:
            self._conn.execute(
                "INSERT INTO runs (id, started_at, status, command, argv, "
                "input, netlist_signature, config_hash, workers, "
                "instrumented, extra) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                (
                    run_id,
                    time.time(),
                    "running",
                    command,
                    json.dumps(argv) if argv is not None else None,
                    input,
                    netlist_signature,
                    config_hash,
                    int(workers),
                    int(bool(instrumented)),
                    json.dumps(extra) if extra else None,
                ),
            )
        return run_id

    def finish_run(
        self, run_id: str, status: str = "finished", **fields: Any
    ) -> None:
        """Finalise a run row.  ``fields`` may be any of the result
        columns (``wall``, ``peak_nodes``, ``literals_before/after``,
        ``area``, ``delay``, ``latches``, ``decomposed``, ``degraded``,
        ``degraded_cones``) plus ``extra`` (merged into the JSON blob)."""
        known = {k: fields[k] for k in _RUN_FIELDS if k in fields}
        unknown = set(fields) - set(known) - {"extra"}
        if unknown:
            raise ValueError(f"unknown run fields: {sorted(unknown)}")
        sets = ["finished_at=?", "status=?"]
        values: list[Any] = [time.time(), status]
        for key, value in known.items():
            sets.append(f"{key}=?")
            if key == "degraded":
                value = int(bool(value))
            values.append(value)
        extra = fields.get("extra")
        if extra:
            row = self._conn.execute(
                "SELECT extra FROM runs WHERE id=?", (run_id,)
            ).fetchone()
            merged = dict(json.loads(row["extra"]) if row and row["extra"] else {})
            merged.update(extra)
            sets.append("extra=?")
            values.append(json.dumps(merged, default=str))
        values.append(run_id)
        with self._conn:
            self._conn.execute(
                f"UPDATE runs SET {', '.join(sets)} WHERE id=?", values
            )

    def record_pass(
        self,
        run_id: str,
        index: int,
        name: str,
        elapsed: Optional[float],
        exhausted: bool = False,
        metrics: Optional[dict[str, Any]] = None,
    ) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT INTO passes (run_id, idx, pass, elapsed, exhausted, "
                "metrics) VALUES (?,?,?,?,?,?)",
                (
                    run_id, index, name, elapsed, int(bool(exhausted)),
                    json.dumps(metrics, sort_keys=True) if metrics else None,
                ),
            )

    def record_cones(
        self, run_id: str, rows: Iterable[dict[str, Any]]
    ) -> int:
        """Append per-cone rows (dicts with any of ``sink``, ``task_key``,
        ``signature``, ``cone_inputs``, ``action``, ``elapsed``,
        ``tree_cost``, ``original_cost``, ``pid``, ``backend``)."""
        payload = [
            (
                run_id,
                row.get("sink"),
                row.get("task_key"),
                row.get("signature"),
                row.get("cone_inputs"),
                row.get("action"),
                row.get("elapsed"),
                row.get("tree_cost"),
                row.get("original_cost"),
                row.get("pid"),
                row.get("backend"),
            )
            for row in rows
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO cones (run_id, sink, task_key, signature, "
                "cone_inputs, action, elapsed, tree_cost, original_cost, "
                "pid, backend) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                payload,
            )
        return len(payload)

    # -- reading --------------------------------------------------------

    @staticmethod
    def _run_row(row: sqlite3.Row) -> dict[str, Any]:
        data = dict(row)
        for key in ("argv", "extra"):
            if data.get(key):
                try:
                    data[key] = json.loads(data[key])
                except (TypeError, ValueError):
                    pass
        data["degraded"] = bool(data.get("degraded"))
        data["instrumented"] = bool(data.get("instrumented"))
        return data

    def runs(
        self,
        command: Optional[str] = None,
        input: Optional[str] = None,
        status: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        """Run rows, oldest first, optionally filtered.  With ``limit``
        the *newest* ``limit`` rows are returned (still oldest-first)."""
        clauses, values = [], []
        for column, value in (
            ("command", command), ("input", input), ("status", status)
        ):
            if value is not None:
                clauses.append(f"{column}=?")
                values.append(value)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        sql = f"SELECT * FROM runs {where} ORDER BY started_at DESC, id DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        rows = [self._run_row(r) for r in self._conn.execute(sql, values)]
        rows.reverse()
        return rows

    def run(self, run_id: str) -> dict[str, Any]:
        """One run by exact id or unique prefix (raises
        :class:`LedgerError` on no / ambiguous match)."""
        rows = self._conn.execute(
            "SELECT * FROM runs WHERE id LIKE ? ORDER BY started_at",
            (run_id + "%",),
        ).fetchall()
        exact = [r for r in rows if r["id"] == run_id]
        if exact:
            rows = exact
        if not rows:
            raise LedgerError(f"no run {run_id!r} in {self.path}")
        if len(rows) > 1:
            ids = ", ".join(r["id"] for r in rows)
            raise LedgerError(f"ambiguous run prefix {run_id!r}: {ids}")
        return self._run_row(rows[0])

    def passes(self, run_id: str) -> list[dict[str, Any]]:
        rows = []
        for r in self._conn.execute(
            "SELECT idx, pass, elapsed, exhausted, metrics FROM passes "
            "WHERE run_id=? ORDER BY seq",
            (run_id,),
        ):
            row = dict(r)
            if row.get("metrics"):
                try:
                    row["metrics"] = json.loads(row["metrics"])
                except (TypeError, ValueError):
                    pass
            rows.append(row)
        return rows

    def cones(self, run_id: str) -> list[dict[str, Any]]:
        return [
            dict(r)
            for r in self._conn.execute(
                "SELECT sink, task_key, signature, cone_inputs, action, "
                "elapsed, tree_cost, original_cost, pid, backend "
                "FROM cones WHERE run_id=? ORDER BY seq",
                (run_id,),
            )
        ]

    def cone_costs(self) -> dict[str, dict[str, float]]:
        """Mean observed elapsed per structural task key, across every
        recorded run — the cost model's lookup table."""
        return {
            r["task_key"]: {"mean": r["mean"], "count": r["n"]}
            for r in self._conn.execute(
                "SELECT task_key, AVG(elapsed) AS mean, COUNT(*) AS n "
                "FROM cones WHERE task_key IS NOT NULL AND elapsed IS NOT "
                "NULL GROUP BY task_key"
            )
        }

    def input_bucket_costs(self) -> dict[int, float]:
        """Mean observed elapsed per cone-input count — the fallback for
        cones never seen before."""
        return {
            int(r["cone_inputs"]): r["mean"]
            for r in self._conn.execute(
                "SELECT cone_inputs, AVG(elapsed) AS mean FROM cones "
                "WHERE cone_inputs IS NOT NULL AND elapsed IS NOT NULL "
                "GROUP BY cone_inputs"
            )
        }

    # -- export ---------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> int:
        """Write every run (with nested passes/cones) as one JSON object
        per line; returns the number of runs written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        with target.open("w") as handle:
            for run in self.runs():
                run["passes"] = self.passes(run["id"])
                run["cones"] = self.cones(run["id"])
                handle.write(json.dumps(run, default=str) + "\n")
                count += 1
        return count


# ---------------------------------------------------------------------------
# Run comparison (the quality analogue of benchmarks/check_regression.py)
# ---------------------------------------------------------------------------

#: Metrics where *larger is worse* and any increase beyond the absolute
#: tolerance is a quality regression.
_QUALITY_METRICS = (
    ("literals_after", 0),
    ("area", 0),
    ("degraded_cones", 0),
)


def compare_runs(
    base: dict[str, Any],
    current: dict[str, Any],
    wall_threshold: float = 0.25,
) -> dict[str, Any]:
    """Compare two run rows the way ``check_regression.py`` compares
    bench timings, generalised to synthesis quality.

    Quality metrics (literal count, mapped area, degraded-cone count)
    regress on *any* increase; wall time regresses beyond
    ``wall_threshold`` (fractional) — but wall is only compared when both
    runs agree on the ``instrumented`` flag, same as the bench gate.
    Returns ``{"rows": [...], "regressions": [...], "notes": [...]}``.
    """
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    notes: list[str] = []
    if base.get("netlist_signature") != current.get("netlist_signature"):
        notes.append(
            "netlist signatures differ — runs are over different designs"
        )
    if base.get("config_hash") != current.get("config_hash"):
        notes.append(
            "config hashes differ — knobs changed between runs"
        )
    for metric, tolerance in _QUALITY_METRICS:
        b, c = base.get(metric), current.get(metric)
        if b is None or c is None:
            continue
        regressed = c > b + tolerance
        rows.append(
            {"metric": metric, "base": b, "current": c,
             "regressed": regressed}
        )
        if regressed:
            regressions.append(
                f"{metric}: {b} -> {c} (quality regression)"
            )
    b_wall, c_wall = base.get("wall"), current.get("wall")
    if b_wall and c_wall:
        if bool(base.get("instrumented")) != bool(current.get("instrumented")):
            notes.append(
                "instrumented flag differs — wall times not comparable, "
                "skipped"
            )
        else:
            ratio = c_wall / b_wall
            regressed = ratio > 1 + wall_threshold
            rows.append(
                {"metric": "wall", "base": round(b_wall, 4),
                 "current": round(c_wall, 4), "ratio": round(ratio, 3),
                 "regressed": regressed}
            )
            if regressed:
                regressions.append(
                    f"wall: {b_wall:.3f}s -> {c_wall:.3f}s "
                    f"({ratio:.2f}x > {1 + wall_threshold:.2f}x)"
                )
    return {"rows": rows, "regressions": regressions, "notes": notes}


def trajectory_regressions(
    ledger: RunLedger, wall_threshold: float = 0.25
) -> list[dict[str, Any]]:
    """Scan every (command, input) group: compare the latest finished run
    against its predecessor.  Returns one entry per group that regressed."""
    groups: dict[tuple[Optional[str], Optional[str]], list[dict[str, Any]]] = {}
    for run in ledger.runs(status="finished"):
        groups.setdefault((run.get("command"), run.get("input")), []).append(run)
    found = []
    for (command, input_), runs in sorted(
        groups.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
    ):
        if len(runs) < 2:
            continue
        base, current = runs[-2], runs[-1]
        result = compare_runs(base, current, wall_threshold=wall_threshold)
        if result["regressions"]:
            found.append(
                {
                    "command": command,
                    "input": input_,
                    "base": base["id"],
                    "current": current["id"],
                    "regressions": result["regressions"],
                }
            )
    return found


# ---------------------------------------------------------------------------
# The active run (how the engine reaches the ledger without importing it)
# ---------------------------------------------------------------------------

#: The (ledger, run_id) pair of the CLI run in flight, or ``None``.
#: Engine layers look this module up via ``sys.modules`` — if the module
#: was never imported there is no active run by definition, so the
#: ledger-off path stays import-free and I/O-free.
_active: Optional[tuple[RunLedger, str]] = None


def activate(ledger: RunLedger, run_id: str) -> None:
    """Mark ``run_id`` in ``ledger`` as the process's active run."""
    global _active
    _active = (ledger, run_id)


def deactivate() -> None:
    """Clear the active run (the ledger object is *not* closed)."""
    global _active
    _active = None


def active_run() -> Optional[tuple[RunLedger, str]]:
    """The active (ledger, run_id) pair, or ``None``."""
    return _active


def active_info() -> Optional[dict[str, str]]:
    """JSON-friendly identity of the active run (for status.json and
    crash bundles)."""
    if _active is None:
        return None
    ledger, run_id = _active
    return {"path": str(ledger.path), "run_id": run_id}


def _swallow(fn, *args: Any, **kwargs: Any) -> None:
    """Ledger appends from engine hot paths must never kill a synthesis
    run; failures are counted instead (``obs.ledger.errors``)."""
    from repro import obs as _obs

    try:
        fn(*args, **kwargs)
    except Exception:
        if _obs.enabled():
            _obs.inc("ledger.errors")


def record_pass_active(
    index: int,
    name: str,
    elapsed: Optional[float],
    exhausted: bool = False,
    metrics: Optional[dict[str, Any]] = None,
) -> None:
    """Append a pass row to the active run (no-op when none)."""
    if _active is None:
        return
    ledger, run_id = _active
    _swallow(
        ledger.record_pass, run_id, index, name, elapsed, exhausted,
        metrics=metrics,
    )


def record_cones_active(rows: list[dict[str, Any]]) -> None:
    """Append cone rows to the active run (no-op when none)."""
    if _active is None or not rows:
        return
    ledger, run_id = _active
    _swallow(ledger.record_cones, run_id, rows)


def finish_active(status: str = "finished", **fields: Any) -> None:
    """Finalise the active run (no-op when none); best-effort."""
    if _active is None:
        return
    ledger, run_id = _active
    _swallow(ledger.finish_run, run_id, status, **fields)
