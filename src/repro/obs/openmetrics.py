"""OpenMetrics text exposition of the registry, monitor and bus state.

Renders the process-wide observability aggregate — registry counters,
gauges, histograms and span stats, the latest
:class:`~repro.obs.monitor.RuntimeMonitor` sample, and the
:class:`~repro.obs.bus.TelemetryBus` worker view — in the OpenMetrics
text format (the Prometheus exposition dialect with typed metadata and
a terminating ``# EOF``).  Two transports:

* **textfile** (``--metrics-file``): :meth:`MetricsExporter.export`
  atomically rewrites the file (temp + rename) on every monitor sample,
  for node-exporter-style textfile collectors and for the CI watcher;
* **scrape endpoint** (``--metrics-port``): a localhost-only
  ``ThreadingHTTPServer`` on a daemon thread renders a fresh exposition
  per ``GET /metrics``.

Metric naming: dotted registry names become underscore OpenMetrics
names under a ``repro_`` prefix; counters gain the mandated ``_total``
suffix; histograms and spans are exposed as summaries (``_count`` +
``_sum``), spans carrying their nesting path as a ``span`` label.

:func:`parse_openmetrics` is the deliberately minimal validating parser
the test-suite and the CI telemetry-smoke job use to check scrape
output — it accepts exactly what :func:`render` produces plus the
format's comment/escaping rules, nothing fancier.

Like every module in the live-telemetry layer this one is only imported
by the CLI when its flags are given; the engine never touches it.
"""

from __future__ import annotations

import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Iterable, Optional

CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(raw: str, prefix: str = "repro") -> str:
    """Map a dotted registry name to a legal OpenMetrics name:
    ``bdd.cache.and.hits`` → ``repro_bdd_cache_and_hits``."""
    name = _SANITIZE.sub("_", raw.strip())
    if prefix:
        name = f"{prefix}_{name}"
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def escape_label(value: Any) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if number != number:  # NaN
        return "NaN"
    return repr(number)


class _Lines:
    """Accumulates exposition lines, emitting each ``# TYPE`` header
    exactly once per metric family."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._typed: set[str] = set()

    def typed(self, name: str, kind: str, help_text: str = "") -> None:
        if name in self._typed:
            return
        self._typed.add(name)
        self.lines.append(f"# TYPE {name} {kind}")
        if help_text:
            self.lines.append(f"# HELP {name} {help_text}")

    def sample(
        self, name: str, value: Any, labels: Optional[dict[str, Any]] = None
    ) -> None:
        if labels:
            body = ",".join(
                f'{key}="{escape_label(val)}"'
                for key, val in sorted(labels.items())
            )
            self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")


def _render_registry(out: _Lines, snapshot: dict[str, Any]) -> None:
    for raw, value in sorted(snapshot.get("counters", {}).items()):
        name = metric_name(raw)
        if not name.endswith("_total"):
            name += "_total"
        out.typed(name, "counter")
        out.sample(name, value)
    for raw, value in sorted(snapshot.get("gauges", {}).items()):
        name = metric_name(raw)
        out.typed(name, "gauge")
        out.sample(name, value)
    for raw, hist in sorted(snapshot.get("histograms", {}).items()):
        name = metric_name(raw)
        out.typed(name, "summary")
        out.sample(name + "_count", hist.get("count", 0))
        out.sample(name + "_sum", hist.get("total", 0.0))
    spans = snapshot.get("spans", {})
    if spans:
        name = metric_name("span.seconds")
        out.typed(name, "summary",
                  "Aggregated span wall time keyed by nesting path")
        for path, stat in sorted(spans.items()):
            labels = {"span": path}
            out.sample(name + "_count", stat.get("count", 0), labels)
            out.sample(name + "_sum", stat.get("total", 0.0), labels)


def _render_monitor(out: _Lines, sample: dict[str, Any]) -> None:
    gauge_map = {
        "repro_monitor_elapsed_seconds": sample.get("elapsed"),
        "repro_monitor_samples": sample.get("sample_index"),
        "repro_process_rss_kilobytes": sample.get("rss_kb"),
    }
    bdd = sample.get("bdd") or {}
    for key in ("managers", "nodes", "unique", "cache_entries"):
        if key in bdd:
            gauge_map[f"repro_bdd_live_{key}"] = bdd[key]
    governor = sample.get("governor") or {}
    if "nodes_allocated" in governor:
        gauge_map["repro_governor_nodes_allocated"] = (
            governor["nodes_allocated"]
        )
    if governor.get("remaining_time") is not None:
        gauge_map["repro_governor_remaining_time_seconds"] = (
            governor["remaining_time"]
        )
    for key, value in sorted((sample.get("parallel") or {}).items()):
        gauge_map[metric_name(key)] = value
    for name, value in gauge_map.items():
        if value is None:
            continue
        out.typed(name, "gauge")
        out.sample(name, value)


def _render_bus(out: _Lines, bus_snapshot: dict[str, Any]) -> None:
    events = bus_snapshot.get("events") or {}
    name = "repro_bus_events_total"
    out.typed(name, "counter", "Telemetry bus records by event type")
    for event, count in sorted(events.items()):
        out.sample(name, count, {"event": event})
    dropped = "repro_bus_events_dropped_total"
    out.typed(dropped, "counter",
              "Records lost to back-pressure or torn lines")
    out.sample(dropped, bus_snapshot.get("events_dropped", 0))
    busy = "repro_bus_worker_busy"
    stalled = "repro_bus_worker_stalled"
    in_flight = "repro_bus_worker_in_flight_seconds"
    out.typed(busy, "gauge", "1 while the worker has a cone in flight")
    out.typed(stalled, "gauge", "1 when liveness checks flag the worker")
    out.typed(in_flight, "gauge")
    for worker in bus_snapshot.get("workers") or []:
        labels = {"pid": worker.get("pid")}
        out.sample(busy, 1 if worker.get("state") == "busy" else 0, labels)
        out.sample(stalled, 1 if worker.get("stalled") else 0, labels)
        if worker.get("in_flight_s") is not None:
            sink_labels = dict(labels)
            if worker.get("sink"):
                sink_labels["sink"] = worker["sink"]
            out.sample(in_flight, worker["in_flight_s"], sink_labels)


def render(
    registry_snapshot: Optional[dict[str, Any]] = None,
    monitor_sample: Optional[dict[str, Any]] = None,
    bus_snapshot: Optional[dict[str, Any]] = None,
) -> str:
    """One complete OpenMetrics exposition (``# EOF``-terminated)."""
    out = _Lines()
    out.typed("repro_exposition_time_seconds", "gauge",
              "Unix time this exposition was rendered")
    out.sample("repro_exposition_time_seconds", time.time())
    if registry_snapshot:
        _render_registry(out, registry_snapshot)
    if monitor_sample:
        _render_monitor(out, monitor_sample)
    if bus_snapshot:
        _render_bus(out, bus_snapshot)
    out.lines.append("# EOF")
    return "\n".join(out.lines) + "\n"


# ---------------------------------------------------------------------------
# Minimal validating parser (tests + CI watcher)
# ---------------------------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: [^ ]+)?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Parse (and thereby validate) an OpenMetrics exposition.

    Returns ``{family_name: {"type": ..., "samples": [(labels, value)]}}``.
    Raises ``ValueError`` on any malformed line, a missing ``# EOF``
    terminator, or a sample for a family with no ``# TYPE``.
    """
    families: dict[str, dict[str, Any]] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if not line.strip():
            raise ValueError(f"line {lineno}: blank line")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "info",
                "unknown", "stateset", "gaugehistogram",
            ):
                raise ValueError(f"line {lineno}: bad TYPE line: {line!r}")
            families[parts[2]] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("# HELP "):
            if len(line.split(" ", 3)) != 4:
                raise ValueError(f"line {lineno}: bad HELP line: {line!r}")
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for label_match in _LABEL.finditer(raw_labels):
                labels[label_match.group(1)] = (
                    label_match.group(2)
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
                consumed = label_match.end()
            leftover = raw_labels[consumed:].strip(", ")
            if leftover:
                raise ValueError(
                    f"line {lineno}: malformed labels: {raw_labels!r}"
                )
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw_value!r}"
            ) from None
        families[family]["samples"].append((labels, value))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families


# ---------------------------------------------------------------------------
# Exporter (textfile + optional HTTP scrape endpoint)
# ---------------------------------------------------------------------------


class MetricsExporter:
    """Owns the two exposition transports for one run.

    ``export(monitor_sample)`` renders a fresh exposition and atomically
    rewrites ``path`` (when given); the HTTP endpoint (when ``port`` is
    given; ``0`` picks a free port, see :attr:`bound_port`) renders its
    own fresh exposition per scrape so it never serves a stale file.
    Binds 127.0.0.1 only — this is an operator's local scrape target,
    not a public service.
    """

    def __init__(
        self,
        path: Optional[str | Path] = None,
        port: Optional[int] = None,
        bus: Optional[Any] = None,
        registry: Optional[Any] = None,
    ) -> None:
        from repro.obs.registry import registry as _global_registry

        self.path = Path(path) if path else None
        self.bus = bus
        self._registry = registry or _global_registry()
        self._last_monitor_sample: Optional[dict[str, Any]] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self.bound_port: Optional[int] = None
        if port is not None:
            self._start_server(port)

    # -- rendering ------------------------------------------------------

    def render_now(self) -> str:
        try:
            registry_snapshot = self._registry.snapshot()
        except Exception:
            registry_snapshot = None
        bus_snapshot = None
        if self.bus is not None:
            try:
                bus_snapshot = self.bus.snapshot(recent=0)
            except Exception:
                bus_snapshot = None
        return render(
            registry_snapshot=registry_snapshot,
            monitor_sample=self._last_monitor_sample,
            bus_snapshot=bus_snapshot,
        )

    def export(self, monitor_sample: Optional[dict[str, Any]] = None) -> None:
        """Refresh the textfile (atomic temp + rename).  Called from the
        monitor's sampler thread; never raises into it."""
        if monitor_sample is not None:
            self._last_monitor_sample = monitor_sample
        if self.path is None:
            return
        try:
            text = self.render_now()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            scratch = self.path.with_suffix(
                self.path.suffix + f".tmp{os.getpid()}"
            )
            scratch.write_text(text)
            scratch.replace(self.path)
        except Exception:
            pass

    # -- HTTP endpoint --------------------------------------------------

    def _start_server(self, port: int) -> None:
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?")[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                body = exporter.render_now().encode()
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the run's stderr

        self._server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self._server.daemon_threads = True
        self.bound_port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._server_thread.start()

    def close(self) -> None:
        """Final textfile refresh, then shut the scrape endpoint down."""
        self.export()
        server = self._server
        if server is not None:
            self._server = None
            server.shutdown()
            server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=2.0)
                self._server_thread = None

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
