"""Crash diagnostics: capture everything a post-mortem needs, then die.

Long synthesis runs fail at the worst time — hours in, inside an opaque
symbolic step.  :func:`write_crash_bundle` snapshots the run's state
into one JSON file *before* the exception propagates: the exception and
formatted traceback, the full obs report (spans, counters, events — the
``governor.exhausted`` and ``pipeline.pass`` events make degraded runs
attributable), the tail of the installed trace recorder's ring buffer,
per-manager BDD statistics, and whatever *crash context* the engine
registered on the way down (the live pass, the latest checkpoint path).

The engine layers call :func:`set_crash_context` at cheap, meaningful
moments (pass start, checkpoint write); the CLI's top-level handler
calls :func:`write_crash_bundle` on any unhandled exception and then
re-raises.  Bundle writing is best-effort throughout — a diagnostic
failure must never mask the original error.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Optional

from repro.obs.registry import registry as _global_registry
from repro.obs.registry import report as _obs_report
from repro.obs.registry import tracer as _get_tracer

BUNDLE_VERSION = 1

#: Default number of trailing trace records embedded in a bundle.
TRACE_TAIL = 500

_context_lock = threading.Lock()
_crash_context: dict[str, Any] = {}


def set_crash_context(**fields: Any) -> None:
    """Merge ``fields`` into the process-wide crash context (last write
    per key wins).  Cheap — a dict update under a lock — so engine code
    can call it at every pass boundary."""
    with _context_lock:
        _crash_context.update(fields)


def clear_crash_context() -> None:
    """Drop all crash context (start of a fresh run)."""
    with _context_lock:
        _crash_context.clear()


def crash_context() -> dict[str, Any]:
    """A copy of the current crash context."""
    with _context_lock:
        return dict(_crash_context)


#: Cap on remembered worker failures — a mass pool failure should not
#: balloon the crash bundle.
MAX_WORKER_FAILURES = 20


def record_worker_failure(
    sink: str,
    kind: str,
    error: Optional[dict[str, Any]] = None,
    **fields: Any,
) -> None:
    """Append a parallel-worker failure to the crash context.

    Worker exceptions are *handled* in the parent (the cone degrades to a
    structural copy), so they never reach the top-level crash handler on
    their own — but if the run later dies for any reason, the bundle
    should still show which workers failed and with what remote
    traceback.  ``kind`` is one of ``exception`` / ``timeout`` /
    ``pool-broken``; ``error`` carries the serialized exception from
    :func:`repro.synth.conetask.format_worker_error`."""
    entry: dict[str, Any] = {"sink": sink, "kind": kind, "at": time.time()}
    if error:
        entry["error"] = dict(error)
    entry.update(fields)
    with _context_lock:
        failures = _crash_context.setdefault("worker_failures", [])
        failures.append(entry)
        del failures[:-MAX_WORKER_FAILURES]


def _manager_rows() -> list[dict[str, Any]]:
    rows = []
    for manager in _global_registry().live_bdd_managers():
        try:
            rows.append(manager.monitor_sample())
        except Exception:
            continue
    return rows


def build_crash_bundle(
    exc: BaseException,
    trace_tail: int = TRACE_TAIL,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble the diagnostic bundle dict for ``exc`` (every section is
    individually best-effort)."""
    bundle: dict[str, Any] = {
        "version": BUNDLE_VERSION,
        "written_at": time.time(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "exception": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        },
        "context": crash_context(),
    }
    try:
        bundle["obs_report"] = _obs_report()
    except Exception as report_exc:  # pragma: no cover - defensive
        bundle["obs_report"] = {"error": repr(report_exc)}
    recorder = _get_tracer()
    if recorder is not None:
        try:
            bundle["trace"] = {
                "dropped": recorder.dropped,
                "tail": recorder.tail(trace_tail),
            }
        except Exception:  # pragma: no cover - defensive
            pass
    bundle["bdd_managers"] = _manager_rows()
    # Ledger identity (path + run id) so a post-mortem can pull the
    # crashed run's pass/cone rows.  sys.modules lookup — no import, so
    # ledger-off runs add no I/O here either.
    ledger_mod = sys.modules.get("repro.obs.ledger")
    if ledger_mod is not None:
        try:
            info = ledger_mod.active_info()
        except Exception:  # pragma: no cover - defensive
            info = None
        if info:
            bundle["ledger"] = info
    # Structured-log tail (same sys.modules idiom): the run's last words
    # in wall-clock order, even when the log file itself is unavailable.
    log_mod = sys.modules.get("repro.obs.logging")
    if log_mod is not None:
        try:
            tail = log_mod.active_tail()
        except Exception:  # pragma: no cover - defensive
            tail = []
        if tail:
            bundle["log_tail"] = tail
    if extra:
        bundle["extra"] = dict(extra)
    return bundle


def write_crash_bundle(
    path: str | Path,
    exc: BaseException,
    trace_tail: int = TRACE_TAIL,
    extra: Optional[dict[str, Any]] = None,
) -> Optional[Path]:
    """Write the bundle for ``exc`` to ``path`` (atomically); returns
    the path, or ``None`` when even best-effort writing failed."""
    try:
        bundle = build_crash_bundle(exc, trace_tail=trace_tail, extra=extra)
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.with_suffix(target.suffix + ".tmp")
        scratch.write_text(json.dumps(bundle, indent=1, default=repr) + "\n")
        scratch.replace(target)
        return target
    except Exception:
        return None


def load_crash_bundle(path: str | Path) -> dict[str, Any]:
    """Read a bundle back (plain ``json.loads`` with a version check)."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported crash bundle version {data.get('version')!r}"
        )
    return data
