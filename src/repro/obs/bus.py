"""Live telemetry bus: streaming worker events while cones are in flight.

Everything the observability stack recorded before this module — spans,
cone timings, ledger rows — became visible only *after* a shard merged
or the run finished.  The bus is the live transport: worker processes
(and the inline ``workers=1`` path, which runs the same code) write one
line-framed JSON record per event to a pipe the parent created before
forking, and a parent-side reader thread aggregates the stream into a
per-worker view (`in-flight cone`, last heartbeat, event counts) that
the :class:`~repro.obs.monitor.RuntimeMonitor` folds into status.json
and :mod:`repro.obs.openmetrics` renders for scraping.

Design constraints, in order:

* **Out-of-band.**  Telemetry must never change synthesis output.  The
  bus only observes; the scheduler's plan-ordered merge is untouched,
  so ``workers=N`` stays bit-identical with the bus on or off.
* **Truthful under pressure.**  The send side is a bounded queue in the
  only sense that matters for a pipe: the write end is non-blocking,
  and when the kernel buffer is full the event is *dropped and
  counted*, never blocked on.  Each subsequent successful record
  carries the emitter's cumulative ``dropped`` count, and the parent
  counts unparseable/torn lines, so ``bus.events_dropped`` is exact.
* **No torn lines.**  Records are capped below ``PIPE_BUF`` (POSIX
  guarantees atomic pipe writes up to that size), so a reader never
  sees two workers' bytes interleaved mid-line; an oversized record is
  replaced by a small ``truncated`` marker rather than split.
* **Import-free when off.**  Engine layers reach the bus exclusively
  through ``sys.modules.get("repro.obs.bus")`` — a run without
  telemetry flags never imports this module (the CI telemetry-smoke
  job asserts exactly that in a fresh interpreter).

Record schema (version :data:`RECORD_VERSION`): every record carries
``v``, ``ev`` (event name), ``pid``, ``t`` (unix time), and — when the
bus was built with them — ``run`` (ledger/CLI run id) and ``shard``.
Cone events add ``sink`` plus event-specific fields:

=================  ====================================================
``cone.start``     ``sink``, ``cone_inputs``
``cone.progress``  ``sink``, ``phase`` (collapse/decompose/instantiate),
                   ``dur``
``heartbeat``      ``sink`` currently in flight (``None`` when idle)
``cone.degrade``   ``sink``, ``reason``
``cone.end``       ``sink``, ``action``, ``elapsed``
=================  ====================================================

The parent may also fold local (non-pipe) events into the same
aggregate via :meth:`TelemetryBus.record_local` — merge progress and
dispatch records use this, so the stream a dashboard sees is one
coherent timeline.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Any, Iterator, Optional

RECORD_VERSION = 1

#: Hard cap on one encoded record.  POSIX guarantees pipe writes up to
#: ``PIPE_BUF`` (>= 512, 4096 on Linux) are atomic; staying well under
#: it means a record is written whole or not at all — never torn.
MAX_RECORD_BYTES = 3072

#: Default worker heartbeat period in seconds (0 disables heartbeats).
DEFAULT_HEARTBEAT = 0.5

#: Default liveness horizon: a worker whose cone has been in flight
#: with no event for this long is considered stalled.
DEFAULT_STALL_AFTER = 10.0

#: Multiple of the cost-model prediction beyond which an in-flight cone
#: is flagged stalled even while heartbeats still arrive (a live worker
#: grinding far past its history is exactly the blow-up case the paper's
#: workloads hit).
STALL_COST_FACTOR = 8.0


# ---------------------------------------------------------------------------
# Worker side (also used by the inline workers=1 path in the parent)
# ---------------------------------------------------------------------------

#: Write-end fd + static record fields, set by ``TelemetryBus.attached()``
#: *before* the process pool forks so children inherit them.  ``None``
#: means "no bus" and every emit function returns immediately.
_WORKER_FD: Optional[int] = None
_WORKER_META: dict[str, Any] = {}
_WORKER_HEARTBEAT: float = DEFAULT_HEARTBEAT

_emitter: Optional["_Emitter"] = None


class _Emitter:
    """Per-process send side: serialises records and writes them to the
    inherited pipe fd, dropping (and counting) on back-pressure."""

    def __init__(self, fd: int, meta: dict[str, Any], heartbeat: float) -> None:
        self.fd = fd
        self.meta = dict(meta)
        self.heartbeat = heartbeat
        self.pid = os.getpid()
        self.dropped = 0
        self.current_sink: Optional[str] = None
        self._lock = threading.Lock()
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_stop = threading.Event()

    def emit(self, ev: str, **fields: Any) -> bool:
        record: dict[str, Any] = {
            "v": RECORD_VERSION,
            "ev": ev,
            "pid": self.pid,
            "t": time.time(),
        }
        record.update(self.meta)
        record.update(fields)
        if self.dropped:
            record["dropped"] = self.dropped
        data = (json.dumps(record, separators=(",", ":"), default=str)
                + "\n").encode()
        if len(data) > MAX_RECORD_BYTES:
            # Replace, don't split: a split record would tear the frame.
            marker = {
                "v": RECORD_VERSION, "ev": ev, "pid": self.pid,
                "t": record["t"], "truncated": True,
            }
            if self.dropped:
                marker["dropped"] = self.dropped
            data = (json.dumps(marker, separators=(",", ":")) + "\n").encode()
        with self._lock:
            try:
                os.write(self.fd, data)
                return True
            except (BlockingIOError, InterruptedError):
                self.dropped += 1  # kernel buffer full: bounded queue
            except OSError:
                self.dropped += 1  # reader gone; stay silent forever
            return False

    # -- heartbeat ------------------------------------------------------

    def ensure_heartbeat(self) -> None:
        if self.heartbeat <= 0 or self._hb_thread is not None:
            return
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-bus-heartbeat",
            daemon=True,
        )
        self._hb_thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self.heartbeat):
            sink = self.current_sink
            if sink is not None:
                self.emit("heartbeat", sink=sink)

    def stop(self) -> None:
        self._hb_stop.set()


def _current_emitter() -> Optional[_Emitter]:
    """The process-local emitter, rebuilt after a fork (a forked child
    inherits the parent's fd and meta but not its threads or lock
    state, so the object itself must be fresh)."""
    global _emitter
    fd = _WORKER_FD
    if fd is None:
        return None
    emitter = _emitter
    if emitter is None or emitter.pid != os.getpid() or emitter.fd != fd:
        emitter = _emitter = _Emitter(fd, _WORKER_META, _WORKER_HEARTBEAT)
    return emitter


def emit(ev: str, **fields: Any) -> bool:
    """Send one event record (no-op returning False when no bus is
    attached).  Safe to call from any process/thread."""
    emitter = _current_emitter()
    if emitter is None:
        return False
    return emitter.emit(ev, **fields)


def cone_started(sink: str, **fields: Any) -> None:
    """Worker hook: a cone's rebuild just began.  Starts the heartbeat
    thread so liveness is visible even inside an opaque symbolic step."""
    emitter = _current_emitter()
    if emitter is None:
        return
    emitter.current_sink = sink
    emitter.ensure_heartbeat()
    emitter.emit("cone.start", sink=sink, **fields)


def cone_progress(sink: str, phase: str, dur: float) -> None:
    """Worker hook: one internal phase (collapse/decompose/instantiate)
    of the in-flight cone completed."""
    emitter = _current_emitter()
    if emitter is None:
        return
    emitter.emit("cone.progress", sink=sink, phase=phase,
                 dur=round(dur, 6))


def cone_finished(sink: str, action: str, **fields: Any) -> None:
    """Worker hook: the cone delivered (any action).  Emits a
    ``cone.degrade`` first when the worker degraded itself."""
    emitter = _current_emitter()
    if emitter is None:
        return
    if action == "copied":
        emitter.emit("cone.degrade", sink=sink,
                     reason=fields.get("degrade_reason"))
    emitter.current_sink = None
    emitter.emit("cone.end", sink=sink, action=action, **fields)


def worker_dropped() -> int:
    """Cumulative drop count of this process's emitter (0 without one)."""
    emitter = _emitter
    return emitter.dropped if emitter is not None else 0


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class TelemetryBus:
    """Parent-side transport + aggregate of the worker event stream.

    Construct in the parent (``run_id`` stamps every record), then wrap
    pool execution in :meth:`attached` so forked workers inherit the
    write end.  A daemon reader thread ingests records as they arrive;
    :meth:`snapshot` / :meth:`worker_summary` expose the aggregate to
    the monitor and the OpenMetrics exporter.  :meth:`close` detaches,
    drains, and releases both pipe ends.
    """

    def __init__(
        self,
        run_id: Optional[str] = None,
        shard: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT,
        stall_after: float = DEFAULT_STALL_AFTER,
        max_recent: int = 256,
    ) -> None:
        self.run_id = run_id
        self.shard = shard
        self.heartbeat_interval = heartbeat_interval
        self.stall_after = stall_after
        self._read_fd, self._write_fd = os.pipe()
        # Non-blocking sends are what makes the queue bounded: a full
        # kernel buffer drops (counted) instead of stalling a worker.
        os.set_blocking(self._write_fd, False)
        self._lock = threading.Lock()
        self._closed = False
        self.started_at = time.time()
        self.workers: dict[int, dict[str, Any]] = {}
        self.counts: dict[str, int] = {}
        self.recent: deque[dict[str, Any]] = deque(maxlen=max_recent)
        #: Lines that failed to parse (torn/corrupt) — reader-side drops.
        self.parse_errors = 0
        #: Per-pid cumulative drop counts reported by emitters.
        self._reported_drops: dict[int, int] = {}
        #: Cost-model predictions per sink (see ``set_expected_costs``).
        self.expected_costs: dict[str, float] = {}
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-bus-reader", daemon=True
        )
        self._reader.start()

    # -- attach/detach --------------------------------------------------

    def meta(self) -> dict[str, Any]:
        fields: dict[str, Any] = {}
        if self.run_id is not None:
            fields["run"] = self.run_id
        if self.shard is not None:
            fields["shard"] = self.shard
        return fields

    def attached(self) -> "_Attachment":
        """Context manager installing this bus as the process's emit
        target.  Enter *before* creating a fork pool so children inherit
        the write fd and meta; the previous target is restored on exit
        (attachments nest)."""
        return _Attachment(self)

    def set_expected_costs(self, costs: dict[str, float]) -> None:
        """Per-sink predicted seconds from the ledger cost model; used
        by :meth:`worker_summary` to flag cones grinding far past their
        history as stalled."""
        with self._lock:
            self.expected_costs = {
                str(sink): float(cost)
                for sink, cost in costs.items()
                if cost and cost > 0
            }

    # -- ingest ---------------------------------------------------------

    def _read_loop(self) -> None:
        buffer = b""
        while True:
            try:
                chunk = os.read(self._read_fd, 65536)
            except OSError:
                break
            if not chunk:
                break
            buffer += chunk
            *lines, buffer = buffer.split(b"\n")
            for line in lines:
                self._ingest(line)
        if buffer:
            # Trailing bytes with no newline at EOF: a torn final write
            # (e.g. a worker killed mid-line) — counted, never raised.
            self._ingest(buffer)

    def _ingest(self, line: bytes) -> None:
        if not line.strip():
            return
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except (ValueError, UnicodeDecodeError):
            with self._lock:
                self.parse_errors += 1
            return
        self._aggregate(record, received=time.time())
        self._mirror_to_log(record)

    def record_local(self, ev: str, **fields: Any) -> None:
        """Fold a parent-side event (merge progress, dispatch) into the
        aggregate without a pipe round trip."""
        record = {"v": RECORD_VERSION, "ev": ev, "pid": os.getpid(),
                  "t": time.time()}
        record.update(self.meta())
        record.update(fields)
        self._aggregate(record, received=record["t"], local=True)
        self._mirror_to_log(record)

    def _aggregate(
        self, record: dict[str, Any], received: float, local: bool = False
    ) -> None:
        ev = str(record.get("ev") or "unknown")
        pid = record.get("pid")
        with self._lock:
            self.counts[ev] = self.counts.get(ev, 0) + 1
            self.recent.append(record)
            if not isinstance(pid, int):
                return
            reported = record.get("dropped")
            if isinstance(reported, (int, float)) and reported > 0:
                previous = self._reported_drops.get(pid, 0)
                if reported > previous:
                    self._reported_drops[pid] = int(reported)
            if local:
                return
            worker = self.workers.setdefault(
                pid,
                {
                    "pid": pid, "events": 0, "state": "idle",
                    "sink": None, "sink_started": None,
                    "last_action": None, "first_seen": received,
                },
            )
            worker["events"] += 1
            worker["last_seen"] = received
            if ev == "cone.start":
                worker["state"] = "busy"
                worker["sink"] = record.get("sink")
                worker["sink_started"] = received
                worker["cone_inputs"] = record.get("cone_inputs")
            elif ev == "cone.progress":
                worker["phase"] = record.get("phase")
            elif ev == "cone.end":
                worker["state"] = "idle"
                worker["sink"] = None
                worker["sink_started"] = None
                worker["phase"] = None
                worker["last_action"] = record.get("action")
            elif ev == "cone.degrade":
                worker["degraded"] = worker.get("degraded", 0) + 1

    def _mirror_to_log(self, record: dict[str, Any]) -> None:
        """Mirror the event into the structured logger when one is
        installed (sys.modules lookup — no import on the off path)."""
        log_mod = sys.modules.get("repro.obs.logging")
        if log_mod is None:
            return
        try:
            fields = {
                k: v for k, v in record.items()
                if k not in ("v", "ev", "t")
            }
            log_mod.log_event("debug", f"bus.{record.get('ev')}", **fields)
        except Exception:
            pass

    # -- aggregate views ------------------------------------------------

    @property
    def events_dropped(self) -> int:
        """Exact count of records that never made it into the aggregate:
        emitter-side drops (back-pressure) plus reader-side parse
        failures (torn/corrupt lines)."""
        with self._lock:
            return self.parse_errors + sum(self._reported_drops.values())

    def events_total(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    def worker_summary(
        self,
        stall_after: Optional[float] = None,
        now: Optional[float] = None,
    ) -> list[dict[str, Any]]:
        """Per-worker liveness rows for status.json.

        A worker is **stalled** when its cone has been in flight with no
        event (not even a heartbeat) for ``stall_after`` seconds — the
        signature of a dead or wedged process — or when a live worker
        has ground past :data:`STALL_COST_FACTOR` times the ledger cost
        model's prediction for that cone (see
        :meth:`set_expected_costs`).
        """
        horizon = self.stall_after if stall_after is None else stall_after
        current = time.time() if now is None else now
        rows: list[dict[str, Any]] = []
        with self._lock:
            workers = [dict(w) for w in self.workers.values()]
            expected = dict(self.expected_costs)
        for worker in sorted(workers, key=lambda w: w["pid"]):
            row = {
                "pid": worker["pid"],
                "state": worker["state"],
                "sink": worker.get("sink"),
                "phase": worker.get("phase"),
                "events": worker["events"],
                "last_action": worker.get("last_action"),
                "last_event_age": round(
                    max(0.0, current - worker.get("last_seen", current)), 3
                ),
                "stalled": False,
            }
            if worker["state"] == "busy":
                started = worker.get("sink_started") or current
                in_flight = max(0.0, current - started)
                row["in_flight_s"] = round(in_flight, 3)
                predicted = expected.get(str(worker.get("sink")))
                if predicted is not None:
                    row["predicted_s"] = round(predicted, 3)
                if row["last_event_age"] > horizon:
                    row["stalled"] = True
                    row["stall_reason"] = (
                        f"no event for {row['last_event_age']:.1f}s"
                    )
                elif (
                    predicted is not None
                    and in_flight > max(horizon, STALL_COST_FACTOR * predicted)
                ):
                    row["stalled"] = True
                    row["stall_reason"] = (
                        f"in flight {in_flight:.1f}s vs "
                        f"{predicted:.3f}s predicted"
                    )
            rows.append(row)
        return rows

    def snapshot(self, recent: int = 16) -> dict[str, Any]:
        """JSON-safe aggregate: event counts, drop accounting, per-worker
        rows, and the ``recent`` newest raw records."""
        with self._lock:
            counts = dict(self.counts)
            tail = list(self.recent)[-recent:] if recent else []
            parse_errors = self.parse_errors
            reported = sum(self._reported_drops.values())
        return {
            "run": self.run_id,
            "started_at": self.started_at,
            "events": counts,
            "events_total": sum(counts.values()),
            "events_dropped": parse_errors + reported,
            "parse_errors": parse_errors,
            "workers": self.worker_summary(),
            "recent": tail,
        }

    # -- teardown -------------------------------------------------------

    def close(self, drain_timeout: float = 2.0) -> None:
        """Detach (if attached), close the parent's write end, wait for
        the reader to drain to EOF, and release the read end.  EOF
        arrives once every child holding an inherited write fd has
        exited — the scheduler reaps its pools before the CLI closes the
        bus, so the wait is bounded by ``drain_timeout`` regardless."""
        if self._closed:
            return
        self._closed = True
        global _WORKER_FD
        if _WORKER_FD == self._write_fd:
            _detach()
        try:
            os.close(self._write_fd)
        except OSError:
            pass
        self._reader.join(timeout=drain_timeout)
        try:
            os.close(self._read_fd)
        except OSError:
            pass

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


class _Attachment:
    """Installs a bus's write end as the process emit target for a
    ``with`` block (restoring the previous target on exit)."""

    def __init__(self, bus: TelemetryBus) -> None:
        self.bus = bus
        self._previous: Optional[tuple[int, dict[str, Any], float]] = None

    def __enter__(self) -> TelemetryBus:
        global _WORKER_FD, _WORKER_META, _WORKER_HEARTBEAT, _emitter
        self._previous = (_WORKER_FD, dict(_WORKER_META), _WORKER_HEARTBEAT)
        _WORKER_FD = self.bus._write_fd
        _WORKER_META = self.bus.meta()
        _WORKER_HEARTBEAT = self.bus.heartbeat_interval
        _emitter = None
        return self.bus

    def __exit__(self, *exc: object) -> bool:
        global _WORKER_FD, _WORKER_META, _WORKER_HEARTBEAT, _emitter
        emitter = _emitter
        if emitter is not None:
            emitter.stop()
        fd, meta, heartbeat = self._previous
        _WORKER_FD, _WORKER_META, _WORKER_HEARTBEAT = fd, meta, heartbeat
        _emitter = None
        return False


def _detach() -> None:
    """Clear the process emit target (used by ``TelemetryBus.close``)."""
    global _WORKER_FD, _WORKER_META, _emitter
    emitter = _emitter
    if emitter is not None:
        emitter.stop()
    _WORKER_FD = None
    _WORKER_META = {}
    _emitter = None


# ---------------------------------------------------------------------------
# Active-bus registry (the ledger idiom: reached via sys.modules only)
# ---------------------------------------------------------------------------

_active_bus: Optional[TelemetryBus] = None


def activate(bus: TelemetryBus) -> None:
    """Make ``bus`` the process-wide active bus (engine layers find it
    through ``sys.modules.get("repro.obs.bus").active()``)."""
    global _active_bus
    _active_bus = bus


def deactivate() -> None:
    global _active_bus
    _active_bus = None


def active() -> Optional[TelemetryBus]:
    """The active bus, or ``None``."""
    return _active_bus
