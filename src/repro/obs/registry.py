"""Process-wide observability registry: counters, gauges, histograms and
nestable timed spans.

The registry is **disabled by default** and designed so that instrumented
code pays near-zero cost when it stays disabled: every public recording
function starts with a single module-flag check and returns immediately,
and :func:`span` hands back a shared no-op context manager.  Hot loops
that cannot afford even a function call per event (the BDD operator
recursions) keep local integer counters instead and are aggregated into
the registry at report time — see ``repro.bdd.manager``.

Metric names are dotted paths whose first segment is the *family*
(``bdd``, ``reach``, ``bidec``, ``algorithm1``, ...); :func:`report`
groups the snapshot by family so downstream tooling can diff one
subsystem at a time.  Span timings are keyed by the full nesting path
(``algorithm1.run/reach.fixpoint``), giving a phase-scoped profile; the
span stack is thread-local so concurrent workers do not corrupt each
other's paths.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from collections import deque
from typing import Any, Iterable, Iterator, Optional

#: Maximum number of retained events (oldest are dropped first).
MAX_EVENTS = 1024

_enabled = False

#: Installed :class:`repro.obs.trace.TraceRecorder` (or ``None``).  Span
#: begin/end and events are mirrored into it; kept here (not in
#: ``trace``) so the span fast path needs no cross-module import.
_tracer = None


def set_tracer(recorder) -> None:
    """Install (or with ``None``, remove) the process-wide trace sink."""
    global _tracer
    _tracer = recorder


def tracer():
    """The installed trace recorder, or ``None``."""
    return _tracer


def enabled() -> bool:
    """Whether instrumentation is currently collected."""
    return _enabled


def enable() -> None:
    """Turn metric collection on (globally, process-wide).

    Enable *before* constructing :class:`~repro.bdd.manager.BDDManager`
    instances whose cache statistics should be tracked — managers decide
    at construction time whether to keep per-operation counters.
    """
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn metric collection off; collected data is kept until
    :func:`reset`."""
    global _enabled
    _enabled = False


class scope:
    """Context manager that enables collection for a block and restores
    the previous state on exit::

        with obs.scope():
            run_workload()
        report = obs.report()
    """

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._previous = False

    def __enter__(self) -> "scope":
        global _enabled
        self._previous = _enabled
        _enabled = self._on
        return self

    def __exit__(self, *exc: object) -> bool:
        global _enabled
        _enabled = self._previous
        return False


# ---------------------------------------------------------------------------
# Metric containers
# ---------------------------------------------------------------------------


class Histogram:
    """Streaming distribution summary: count/total/min/max plus sparse
    power-of-two buckets (bucket key ``e`` counts values in
    ``(2^(e-1), 2^e]``; non-positive values land in bucket ``0``)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(0, math.ceil(math.log2(value))) if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class SpanStat:
    """Aggregate of all completions of one span path."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if self.min is None or elapsed < self.min:
            self.min = elapsed
        if self.max is None or elapsed > self.max:
            self.max = elapsed

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else 0.0,
        }


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class Registry:
    """Holds every collected metric.  One process-wide instance exists
    (module functions below delegate to it); tests may build private
    instances."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._epoch = time.perf_counter()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: dict[str, SpanStat] = {}
        self.events: deque[dict[str, Any]] = deque(maxlen=MAX_EVENTS)
        #: Events the bounded deque silently displaced (surfaced as the
        #: ``obs.events_dropped`` counter so truncation is visible).
        self.events_dropped = 0
        #: Every thread's live span stack, keyed by thread id — the
        #: stacks themselves are only mutated by their owning thread
        #: (via the thread-local handle); this index lets the runtime
        #: monitor *read* other threads' current paths.
        self._thread_stacks: dict[int, list[str]] = {}
        # BDD managers keep local counters (see repro.bdd.manager); live
        # ones are aggregated at report time, finalized ones flush their
        # totals here so no work is lost when scratch managers die.
        self._bdd_live: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._bdd_flushed: dict[str, int] = {}
        self._bdd_total_managers = 0
        self._bdd_peak_nodes = 0

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def gauge_values(self, prefix: str = "") -> dict[str, float]:
        """Current gauges whose names start with ``prefix`` (thread-safe
        snapshot — the monitor uses this to surface progress gauges,
        e.g. ``parallel.cones.*``, in status.json)."""
        with self._lock:
            return {
                name: value
                for name, value in self.gauges.items()
                if name.startswith(prefix)
            }

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def record_span(self, path: str, elapsed: float) -> None:
        with self._lock:
            stat = self.spans.get(path)
            if stat is None:
                stat = self.spans[path] = SpanStat()
            stat.record(elapsed)

    def event(self, name: str, **fields: Any) -> None:
        entry = {"name": name, "t": round(time.perf_counter() - self._epoch, 6)}
        entry.update(fields)
        with self._lock:
            if len(self.events) == self.events.maxlen:
                self.events_dropped += 1
            self.events.append(entry)
        recorder = _tracer
        if recorder is not None:
            recorder.instant(name, fields or None)

    # -- span stack -----------------------------------------------------

    def span_stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
            self._thread_stacks[threading.get_ident()] = stack
        return stack

    def current_span_path(self) -> str:
        return "/".join(self.span_stack())

    def active_span_paths(self) -> dict[int, str]:
        """Current ``/``-joined span path of every thread with an open
        span (racy snapshot — safe to call from a monitor thread)."""
        return {
            tid: "/".join(stack)
            for tid, stack in list(self._thread_stacks.items())
            if stack
        }

    # -- BDD manager aggregation ----------------------------------------

    def track_bdd_manager(self, manager: Any) -> None:
        """Track a manager's local cache statistics.  The manager must
        expose ``stats`` (an object with ``as_dict()``) and
        ``num_nodes``; its final totals are flushed when it is garbage
        collected."""
        stats = manager.stats
        if stats is None:
            return
        with self._lock:
            self._bdd_live.add(manager)
            self._bdd_total_managers += 1
        weakref.finalize(manager, self._flush_bdd_stats, stats)

    def _flush_bdd_stats(self, stats: Any) -> None:
        snapshot = stats.as_dict()
        with self._lock:
            for key, value in snapshot.items():
                self._bdd_flushed[key] = self._bdd_flushed.get(key, 0) + value
            # No garbage collection in this engine, so a dead manager's
            # peak node count is its insert count plus the two terminals.
            peak = snapshot.get("unique.inserts", 0) + 2
            if peak > self._bdd_peak_nodes:
                self._bdd_peak_nodes = peak

    def live_bdd_managers(self) -> list[Any]:
        """The currently-alive tracked managers (for monitor sampling)."""
        with self._lock:
            return list(self._bdd_live)

    def bdd_peak_nodes(self) -> int:
        """Largest node count any single tracked manager reached, dead
        or alive (0 when nothing was tracked)."""
        _, gauges = self._bdd_snapshot()
        return int(gauges.get("bdd.nodes.peak", 0))

    def _bdd_snapshot(self) -> tuple[dict[str, float], dict[str, float]]:
        """Aggregated (counters, gauges) of every tracked manager, dead
        or alive, namespaced under ``bdd.``."""
        with self._lock:
            totals = dict(self._bdd_flushed)
            live = list(self._bdd_live)
            total_managers = self._bdd_total_managers
            peak = self._bdd_peak_nodes
        # ``peak`` is the largest node count any *single* manager reached
        # (dead or alive); ``live_nodes`` sums across live managers, so
        # the two are not ordered relative to each other.
        live_nodes = 0
        live_unique = 0
        live_cache = 0
        load_sum = 0.0
        load_managers = 0
        for manager in live:
            stats = manager.stats
            if stats is None:
                continue
            for key, value in stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
            live_nodes += manager.num_nodes
            live_unique += manager.unique_size
            live_cache += sum(manager.cache_sizes().values())
            load = getattr(manager, "unique_load_factor", None)
            if load is not None:
                load_sum += load()
                load_managers += 1
            if manager.num_nodes > peak:
                peak = manager.num_nodes
        counters = {f"bdd.{key}": value for key, value in sorted(totals.items())}
        gauges = {
            "bdd.managers.live": len(live),
            "bdd.managers.total": total_managers,
            "bdd.nodes.live": live_nodes,
            "bdd.nodes.peak": peak,
            "bdd.unique.live": live_unique,
            "bdd.cache.entries.live": live_cache,
        }
        if load_managers:
            gauges["bdd.unique.load"] = round(load_sum / load_managers, 4)
        if total_managers == 0:
            return {}, {}
        return counters, gauges

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable snapshot of everything collected so far,
        grouped by metric family under ``"families"``."""
        bdd_counters, bdd_gauges = self._bdd_snapshot()
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            histograms = {k: h.as_dict() for k, h in self.histograms.items()}
            spans = {k: s.as_dict() for k, s in self.spans.items()}
            events = list(self.events)
            events_dropped = self.events_dropped
        if events_dropped:
            counters["obs.events_dropped"] = events_dropped
        counters.update(bdd_counters)
        gauges.update(bdd_gauges)
        families: dict[str, dict[str, Any]] = {}

        def bucket(kind: str, name: str, value: Any, family_of: str) -> None:
            family = families.setdefault(
                family_of, {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
            )
            family[kind][name] = value

        for name, value in sorted(counters.items()):
            bucket("counters", name, value, name.split(".", 1)[0])
        for name, value in sorted(gauges.items()):
            bucket("gauges", name, value, name.split(".", 1)[0])
        for name, value in sorted(histograms.items()):
            bucket("histograms", name, value, name.split(".", 1)[0])
        for path, value in sorted(spans.items()):
            leaf = path.split("/")[0]
            bucket("spans", path, value, leaf.split(".", 1)[0])
        return {
            "version": 1,
            "enabled": _enabled,
            "generated_at": time.time(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
            "events": events,
            "families": families,
        }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.spans.clear()
            self.events.clear()
            self.events_dropped = 0
            self._bdd_live = weakref.WeakSet()
            self._bdd_flushed.clear()
            self._bdd_total_managers = 0
            self._bdd_peak_nodes = 0
            self._epoch = time.perf_counter()


_REGISTRY = Registry()


def registry() -> Registry:
    """The process-wide registry instance."""
    return _REGISTRY


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class _SpanHandle:
    __slots__ = ("name", "path", "start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.path = name
        self.start = 0.0

    def __enter__(self) -> "_SpanHandle":
        stack = _REGISTRY.span_stack()
        stack.append(self.name)
        self.path = "/".join(stack)
        recorder = _tracer
        if recorder is not None:
            recorder.begin(self.name, {"path": self.path})
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self.start
        recorder = _tracer
        if recorder is not None:
            recorder.end(self.name)
        stack = _REGISTRY.span_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        _REGISTRY.record_span(self.path, elapsed)
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str) -> Any:
    """Timed span context manager.  Nesting is recorded: the aggregation
    key is the ``/``-joined path of active span names on this thread."""
    if not _enabled:
        return _NULL_SPAN
    return _SpanHandle(name)


def current_span_path() -> str:
    """The ``/``-joined path of active spans on the calling thread."""
    return _REGISTRY.current_span_path()


# ---------------------------------------------------------------------------
# Module-level recording facade (all no-ops while disabled)
# ---------------------------------------------------------------------------


def inc(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name``."""
    if not _enabled:
        return
    _REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins)."""
    if not _enabled:
        return
    _REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name``."""
    if not _enabled:
        return
    _REGISTRY.observe(name, value)


def event(name: str, **fields: Any) -> None:
    """Append a timestamped event (bounded buffer of :data:`MAX_EVENTS`)."""
    if not _enabled:
        return
    _REGISTRY.event(name, **fields)


def track_bdd_manager(manager: Any) -> None:
    """Register a BDD manager for cache-statistics aggregation."""
    if not _enabled:
        return
    _REGISTRY.track_bdd_manager(manager)


def report() -> dict[str, Any]:
    """Snapshot of everything collected so far (works while disabled:
    returns whatever was collected before the switch-off)."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Drop all collected data (the enabled flag is untouched)."""
    _REGISTRY.reset()
