"""Runtime monitor: a daemon sampler for long synthesis runs.

A :class:`RuntimeMonitor` thread wakes every ``interval`` seconds and
snapshots the live state of the process: BDD manager node counts and
cache sizes (every manager the obs registry tracks), process RSS,
elapsed wall time, each thread's current span path, and — when given a
:class:`~repro.engine.governor.ResourceGovernor` — the remaining budget.

Each sample goes two places:

* as ``C`` (counter-track) records into the installed trace recorder,
  so Perfetto renders node-count/RSS evolution under the span timeline;
* atomically rewritten into a ``status.json`` heartbeat file (write to
  a sibling temp file, then ``rename``), so external tooling — a watch
  loop, a dashboard, an ops cron — can observe a run in flight without
  touching the process.

The monitor never throws into the host run: sampling errors are counted
(``monitor.sample_errors``) and swallowed.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Optional

from repro.obs.registry import Registry
from repro.obs.registry import registry as _global_registry
from repro.obs.registry import tracer as _get_tracer

#: Default sampling period in seconds.
DEFAULT_INTERVAL = 1.0


def process_rss_kb() -> Optional[int]:
    """Resident set size of this process in KiB, or ``None`` when the
    platform offers no cheap probe (``/proc`` first, ``resource`` as the
    fallback — note ``ru_maxrss`` is a high-water mark, not current)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ``ru_maxrss`` units are platform-defined: macOS reports bytes,
        # Linux (and the BSDs) kibibytes.  Branch on the platform — a
        # magnitude guess misclassifies any Linux process past 1 GiB.
        return rss // 1024 if sys.platform == "darwin" else rss
    except Exception:
        return None


class RuntimeMonitor:
    """Periodic sampler of BDD/process/governor state.

    Use as a context manager (starts on enter, stops and writes a final
    sample on exit), or drive :meth:`start`/:meth:`stop` directly.
    :meth:`sample` can also be called synchronously — handy in tests and
    for a final snapshot at shutdown.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        status_file: Optional[str | Path] = None,
        recorder: Optional[Any] = None,
        governor: Optional[Any] = None,
        registry: Optional[Registry] = None,
        bus: Optional[Any] = None,
        exporter: Optional[Any] = None,
        stall_after: Optional[float] = None,
    ) -> None:
        self.interval = interval
        self.status_file = Path(status_file) if status_file else None
        self._recorder = recorder
        self.governor = governor
        self._registry = registry or _global_registry()
        #: Telemetry bus whose worker aggregate is folded into samples
        #: (``sample["workers"]`` / ``sample["bus"]``); optional.
        self.bus = bus
        #: Metrics exporter refreshed after every sample; optional.
        self.exporter = exporter
        #: Liveness horizon for stalled-cone detection (``None`` uses
        #: the bus default).
        self.stall_after = stall_after
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._epoch = time.perf_counter()
        self.samples = 0
        self.sample_errors = 0
        self.last_sample: Optional[dict[str, Any]] = None
        #: Static fields merged into every sample (the CLI stamps the
        #: ledger identity here so status.json names the run's row).
        self.extra: dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "RuntimeMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop the sampler thread (waits for it) and, by default, take
        one last synchronous sample so the status file reflects the end
        state."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(5.0, 2 * self.interval))
            self._thread = None
        if final_sample:
            self.sample()

    def __enter__(self) -> "RuntimeMonitor":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        # Sample immediately so short runs still leave a heartbeat.
        self._sample_guarded()
        while not self._stop.wait(self.interval):
            self._sample_guarded()

    def _sample_guarded(self) -> None:
        try:
            self.sample()
        except Exception:
            self.sample_errors += 1

    # -- sampling -------------------------------------------------------

    def _recorder_now(self) -> Optional[Any]:
        """The explicit recorder if one was given, else whatever trace
        recorder is currently installed process-wide."""
        if self._recorder is not None:
            return self._recorder
        return _get_tracer()

    def bdd_totals(self) -> dict[str, Any]:
        """Aggregate node/unique/cache-entry counts over the live
        managers the registry tracks, plus per-manager rows."""
        managers = self._registry.live_bdd_managers()
        totals = {"managers": len(managers), "nodes": 0, "unique": 0,
                  "cache_entries": 0, "unique_capacity": 0,
                  "cache_capacity": 0}
        rows: list[dict[str, int]] = []
        for manager in managers:
            try:
                row = manager.monitor_sample()
            except Exception:
                continue
            totals["nodes"] += row["nodes"]
            totals["unique"] += row["unique"]
            totals["cache_entries"] += row["cache_entries"]
            totals["unique_capacity"] += row.get("unique_capacity", 0)
            totals["cache_capacity"] += row.get("cache_capacity", 0)
            rows.append(row)
        if totals["unique_capacity"]:
            totals["unique_load"] = round(
                totals["unique"] / totals["unique_capacity"], 4
            )
        totals["per_manager"] = rows
        return totals

    def sample(self) -> dict[str, Any]:
        """Take one sample: emit trace counters, rewrite the status
        file, remember it as :attr:`last_sample`, and return it."""
        now = time.time()
        elapsed = time.perf_counter() - self._epoch
        bdd = self.bdd_totals()
        rss = process_rss_kb()
        spans = {
            str(tid): path
            for tid, path in self._registry.active_span_paths().items()
        }
        sample: dict[str, Any] = {
            "pid": os.getpid(),
            "time_unix": now,
            "elapsed": round(elapsed, 6),
            "sample_index": self.samples,
            "interval": self.interval,
            "bdd": bdd,
            "rss_kb": rss,
            "spans": spans,
        }
        # Worker/cone progress: the parallel pass maintains
        # ``parallel.cones.*`` gauges while it merges shards.
        try:
            progress = self._registry.gauge_values("parallel.")
        except Exception:
            progress = {}
        if progress:
            sample["parallel"] = progress
        if self.bus is not None:
            try:
                workers = self.bus.worker_summary(
                    stall_after=self.stall_after
                )
                sample["workers"] = workers
                sample["bus"] = {
                    "events_total": self.bus.events_total(),
                    "events_dropped": self.bus.events_dropped,
                    "workers_stalled": sum(
                        1 for w in workers if w.get("stalled")
                    ),
                }
            except Exception:
                pass
        for key, value in self.extra.items():
            sample.setdefault(key, value)
        if self.governor is not None:
            snapshot = self.governor.snapshot()
            snapshot["remaining_time"] = self.governor.remaining_time()
            sample["governor"] = snapshot
        recorder = self._recorder_now()
        if recorder is not None:
            recorder.counter(
                "bdd",
                {
                    "nodes": bdd["nodes"],
                    "unique": bdd["unique"],
                    "cache_entries": bdd["cache_entries"],
                },
            )
            if rss is not None:
                recorder.counter("memory", {"rss_kb": rss})
            if self.governor is not None:
                gov = sample["governor"]
                values = {"nodes_allocated": gov["nodes_allocated"]}
                if gov.get("remaining_time") is not None:
                    values["remaining_time_s"] = round(
                        gov["remaining_time"], 3
                    )
                recorder.counter("governor", values)
        if self.status_file is not None:
            self._write_status(sample)
        if self.exporter is not None:
            try:
                self.exporter.export(sample)
            except Exception:
                pass
        self.samples += 1
        self.last_sample = sample
        return sample

    def _write_status(self, sample: dict[str, Any]) -> None:
        """Atomic heartbeat rewrite: temp file + rename, so a reader
        never sees a torn JSON document."""
        target = self.status_file
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.with_suffix(target.suffix + f".tmp{os.getpid()}")
        scratch.write_text(json.dumps(sample, indent=1) + "\n")
        scratch.replace(target)
