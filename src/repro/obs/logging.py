"""Structured JSONL run log (``--log-json PATH``).

One JSON object per line, leveled and run/cone-correlated: every record
carries ``t`` (unix time), ``level``, ``event``, ``pid``, the run id the
logger was installed with, and whatever keyword fields the call site
adds (``sink``, ``pass``, ...).  Three consumers:

* the file itself — greppable, ``jq``-able, append-only;
* a bounded in-memory tail that :mod:`repro.obs.crashdump` embeds in
  crash bundles, so a post-mortem shows the run's last words even when
  the log file is unavailable;
* the telemetry bus mirrors its records here (at ``debug``), so one
  file interleaves pass boundaries, cone lifecycle, and worker events
  in wall-clock order.

The module-level ``install``/``log_event``/``active_tail`` API follows
the ledger idiom: engine layers reach it only through
``sys.modules.get("repro.obs.logging")`` and the CLI is the sole
importer, so a run without ``--log-json`` never loads this module.
(The absolute-import policy means this name never shadows the stdlib
``logging`` either.)
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Records kept for crash bundles (see :func:`active_tail`).
DEFAULT_TAIL = 200


class StructuredLogger:
    """Append-only JSONL writer with a bounded in-memory tail.

    ``level`` is the *threshold*: records below it are discarded (the
    default ``debug`` keeps everything, including the bus mirror).
    Writing never raises into the host run — an unwritable path
    degrades to tail-only operation, counted in :attr:`write_errors`.
    """

    def __init__(
        self,
        path: Optional[str | Path] = None,
        level: str = "debug",
        run_id: Optional[str] = None,
        tail: int = DEFAULT_TAIL,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r} (choose from {sorted(LEVELS)})"
            )
        self.path = Path(path) if path else None
        self.level = level
        self.threshold = LEVELS[level]
        self.run_id = run_id
        self.records_written = 0
        self.write_errors = 0
        self.tail: deque[dict[str, Any]] = deque(maxlen=tail)
        self._lock = threading.Lock()
        self._handle = None
        if self.path is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", buffering=1)
            except OSError:
                self._handle = None
                self.write_errors += 1

    def log(self, level: str, event: str, **fields: Any) -> bool:
        """Record one event; returns False when filtered or unwritten."""
        severity = LEVELS.get(level)
        if severity is None or severity < self.threshold:
            return False
        record: dict[str, Any] = {
            "t": time.time(),
            "level": level,
            "event": event,
            "pid": os.getpid(),
        }
        if self.run_id is not None:
            record["run"] = self.run_id
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self.tail.append(record)
            if self._handle is not None:
                try:
                    self._handle.write(line + "\n")
                    self.records_written += 1
                except (OSError, ValueError):
                    self.write_errors += 1
            return True

    def debug(self, event: str, **fields: Any) -> bool:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> bool:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> bool:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> bool:
        return self.log("error", event, **fields)

    def tail_records(self, limit: Optional[int] = None) -> list[dict[str, Any]]:
        """The newest retained records, oldest first."""
        with self._lock:
            records = list(self.tail)
        if limit is not None:
            records = records[-limit:]
        return records

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "StructuredLogger":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# Active-logger registry (reached via sys.modules only; CLI installs it)
# ---------------------------------------------------------------------------

_active: Optional[StructuredLogger] = None


def install(logger: StructuredLogger) -> None:
    """Make ``logger`` the process-wide log sink."""
    global _active
    _active = logger


def uninstall() -> None:
    global _active
    _active = None


def active() -> Optional[StructuredLogger]:
    """The installed logger, or ``None``."""
    return _active


def log_event(level: str, event: str, **fields: Any) -> bool:
    """Log through the installed logger (no-op returning False when
    none is installed).  This is the call every other obs module makes
    after a successful ``sys.modules.get("repro.obs.logging")``."""
    logger = _active
    if logger is None:
        return False
    try:
        return logger.log(level, event, **fields)
    except Exception:
        return False


def active_tail(limit: int = 50) -> list[dict[str, Any]]:
    """Tail of the installed logger (empty without one) — what the
    crash-bundle builder embeds."""
    logger = _active
    if logger is None:
        return []
    try:
        return logger.tail_records(limit)
    except Exception:
        return []
