"""Interval representation of incompletely specified functions
(Section 3.2 of the paper)."""

from repro.intervals.interval import Interval

__all__ = ["Interval"]
