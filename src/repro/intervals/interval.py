"""Incompletely specified functions as intervals (Section 3.2).

An interval ``[l(x), u(x)]`` denotes the set of completely specified
functions ``{f : l <= f <= u}``.  It is *consistent* (non-empty) iff
``l <= u``.  The don't-care set is ``u & ~l``.  Abstraction of a variable
subset follows Example 3.2: ``∀x [l, u] = [∃x l, ∀x u]`` — the members of
the result are exactly the members of the original interval that are
vacuous in (independent of) the abstracted variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.bdd import count as _count
from repro.bdd import quantify as _quantify
from repro.bdd.manager import BDDManager, FALSE, TRUE


@dataclass(frozen=True)
class Interval:
    """An incompletely specified Boolean function ``[lower, upper]``.

    ``lower`` and ``upper`` are BDD nodes in ``manager``.  The class does
    not require consistency at construction time — emptiness is itself a
    meaningful result of abstraction (Example 3.2) — but most operations
    on inconsistent intervals raise.
    """

    manager: BDDManager
    lower: int
    upper: int

    # -- constructors --------------------------------------------------

    @classmethod
    def exact(cls, manager: BDDManager, f: int) -> "Interval":
        """Interval containing the single function ``f``."""
        return cls(manager, f, f)

    @classmethod
    def with_dont_cares(
        cls, manager: BDDManager, f: int, dont_care: int
    ) -> "Interval":
        """The paper's synthesis interval ``[f & ~dc, f | dc]`` for an
        on-set function ``f`` and a don't-care set ``dc`` (Section 3.5.3
        uses unreachable states as ``dc``)."""
        return cls(
            manager,
            manager.apply_and(f, manager.negate(dont_care)),
            manager.apply_or(f, dont_care),
        )

    # -- basic predicates ----------------------------------------------

    def is_consistent(self) -> bool:
        """Non-emptiness check: ``lower <= upper``."""
        return self.manager.leq(self.lower, self.upper)

    def _require_consistent(self) -> None:
        if not self.is_consistent():
            raise ValueError("interval is inconsistent (empty)")

    def is_exact(self) -> bool:
        """True iff the interval contains exactly one function."""
        return self.lower == self.upper

    def contains(self, f: int) -> bool:
        """Membership test for a completely specified function."""
        return self.manager.leq(self.lower, f) and self.manager.leq(f, self.upper)

    def dont_care(self) -> int:
        """The don't-care set ``upper & ~lower``."""
        return self.manager.apply_and(self.upper, self.manager.negate(self.lower))

    def num_members(self, num_vars: Optional[int] = None) -> int:
        """Number of completely specified member functions:
        ``2**|dont_care minterms|`` (Example 3.1 has four)."""
        self._require_consistent()
        return 2 ** _count.sat_count(self.manager, self.dont_care(), num_vars)

    def members(self, variables: Sequence[int]) -> Iterator[int]:
        """Enumerate all member functions over the given variable list.

        Exponential in the number of don't-care minterms; intended for
        small examples and tests.
        """
        self._require_consistent()
        dc_minterms = list(
            _count.iter_models(self.manager, self.dont_care(), variables)
        )
        for selection in range(1 << len(dc_minterms)):
            member = self.lower
            for index, minterm in enumerate(dc_minterms):
                if (selection >> index) & 1:
                    member = self.manager.apply_or(
                        member, self.manager.cube(minterm)
                    )
            yield member

    # -- operations ----------------------------------------------------

    def complement(self) -> "Interval":
        """The interval of complements ``[~u, ~l]`` (used to derive AND
        decomposition from OR decomposability, Section 3.3.1)."""
        return Interval(
            self.manager, self.manager.negate(self.upper), self.manager.negate(self.lower)
        )

    def abstract(self, variables: Iterable[int]) -> "Interval":
        """``∀x [l, u] = [∃x l, ∀x u]`` — may yield an inconsistent
        interval, meaning no member is vacuous in ``variables``."""
        lower, upper = _quantify.abstract_interval(
            self.manager, self.lower, self.upper, list(variables)
        )
        return Interval(self.manager, lower, upper)

    def can_abstract(self, variables: Iterable[int]) -> bool:
        """True iff some member function is independent of ``variables``."""
        return self.abstract(variables).is_consistent()

    def support(self) -> set[int]:
        """Union of the structural supports of the two bounds."""
        return _count.support(self.manager, self.lower) | _count.support(
            self.manager, self.upper
        )

    def essential_support(self) -> set[int]:
        """Variables that *every* member depends on — i.e. variables whose
        individual abstraction is infeasible."""
        return {
            var for var in self.support() if not self.can_abstract([var])
        }

    def reduce_support(self) -> tuple["Interval", set[int]]:
        """Greedily abstract redundant variables (Section 3.5.1: "interval
        pre-processed with the ∀ operation eliminates vacuous variables").

        Returns the reduced interval and the set of variables removed.
        The greedy order is by ascending variable index; a variable is
        dropped when the interval abstracted of it *and all previously
        dropped variables* stays consistent.
        """
        self._require_consistent()
        dropped: set[int] = set()
        current = self
        for var in sorted(self.support()):
            attempt = current.abstract([var])
            if attempt.is_consistent():
                current = attempt
                dropped.add(var)
        return current, dropped

    def any_member(self) -> int:
        """A canonical member (the lower bound)."""
        self._require_consistent()
        return self.lower

    def restrict(self, assignment: dict[int, bool]) -> "Interval":
        """Cofactor both bounds by a partial assignment."""
        return Interval(
            self.manager,
            self.manager.restrict(self.lower, assignment),
            self.manager.restrict(self.upper, assignment),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "consistent" if self.is_consistent() else "EMPTY"
        return f"<Interval lower={self.lower} upper={self.upper} {state}>"
