"""Building BDDs for network cones (the "selectively collapse logic" step
of Algorithm 1)."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.bdd.manager import BDDManager, FALSE, TRUE
from repro.network.netlist import Network


class ConeCollapser:
    """Collapses combinational cones of a network into BDDs.

    One manager hosts a variable per combinational source (primary input
    or latch output), created lazily in a caller-controllable order; node
    functions are cached so overlapping cones share work.
    """

    def __init__(
        self,
        network: Network,
        manager: Optional[BDDManager] = None,
        source_order: Optional[Sequence[str]] = None,
        cut_points: Optional[set[str]] = None,
    ) -> None:
        self.network = network
        self.manager = manager if manager is not None else BDDManager()
        #: Internal signals treated as free variables (cut points) — used
        #: by observability-don't-care computation.
        self.cut_points = set(cut_points or ())
        self._var_of: dict[str, int] = {}
        self._cache: dict[str, int] = {}
        if source_order is not None:
            for name in source_order:
                self.source_var(name)

    def source_var(self, name: str) -> int:
        """Manager variable index for a combinational source signal (or a
        declared cut point)."""
        var = self._var_of.get(name)
        if var is None:
            is_source = (
                name in self.network.inputs or name in self.network.latches
            )
            if not is_source and name not in self.cut_points:
                raise KeyError(f"{name!r} is not a combinational source")
            var = self.manager.new_var(name)
            self._var_of[name] = var
        return var

    @property
    def var_of(self) -> Mapping[str, int]:
        """Read-only view of the source-to-variable assignment."""
        return dict(self._var_of)

    def node_function(self, signal: str) -> int:
        """BDD of ``signal`` in terms of combinational sources (and cut
        points)."""
        if (
            signal in self.network.inputs
            or signal in self.network.latches
            or signal in self.cut_points
        ):
            return self.manager.var(self.source_var(signal))
        cached = self._cache.get(signal)
        if cached is not None:
            return cached
        # Iterative cone evaluation in topological order restricted to the
        # transitive fanin, to avoid Python recursion limits on deep cones.
        cone = self.network.transitive_fanin([signal])
        for name in self.network.topological_order():
            if name not in cone or name in self._cache:
                continue
            if name in self.cut_points:
                continue  # read as a free variable, never evaluated
            node = self.network.nodes[name]
            operands = [self._signal_node(fanin) for fanin in node.fanins]
            self._cache[name] = self._apply(node, operands)
        return self._cache[signal]

    def _signal_node(self, name: str) -> int:
        if (
            name in self.network.inputs
            or name in self.network.latches
            or name in self.cut_points
        ):
            return self.manager.var(self.source_var(name))
        return self._cache[name]

    def _apply(self, node, operands: list[int]) -> int:
        manager = self.manager
        if node.op == "and":
            return manager.conjoin(operands)
        if node.op == "or":
            return manager.disjoin(operands)
        if node.op == "xor":
            result = FALSE
            for operand in operands:
                result = manager.apply_xor(result, operand)
            return result
        if node.op == "not":
            return manager.negate(operands[0])
        if node.op == "buf":
            return operands[0]
        if node.op == "const0":
            return FALSE
        if node.op == "const1":
            return TRUE
        # cover
        assert node.cover is not None
        result = FALSE
        for cube in node.cover:
            term = TRUE
            for position, polarity in cube.literals:
                literal = operands[position]
                term = manager.apply_and(
                    term, literal if polarity else manager.negate(literal)
                )
            result = manager.apply_or(result, term)
        return result

    def functions(self, signals: Iterable[str]) -> dict[str, int]:
        """Collapse several signals at once (shared subcones are reused)."""
        return {signal: self.node_function(signal) for signal in signals}

    def compact(self, extra_roots: Iterable[int] = ()) -> dict[int, int]:
        """Rebuild the manager keeping only live nodes (cached signal
        functions plus ``extra_roots``), dropping everything dead.

        The variable order and names are preserved exactly, so rebuilt
        functions are semantically identical; only node *handles* change.
        Returns the old-node -> new-node map so holders of outstanding
        handles (share tables, context caches) can remap themselves.
        This is the safe-point shrink the engine's ``--auto-reorder``
        hook applies to the long-lived collapser manager — order-neutral
        on synthesis output, unlike genuine sifting, because variable
        indices (which partition enumeration orders depend on) never
        move.
        """
        from repro.bdd.compose import transfer_multi

        old = self.manager
        target = BDDManager(
            native=old.native,
            auto_reorder_threshold=old.auto_reorder_threshold,
        )
        for name in self._var_of:
            target.new_var(name)
        roots = list(self._cache.values())
        roots.extend(extra_roots)
        node_map: dict[int, int] = {}
        transfer_multi(old, roots, target, node_map=node_map)
        self._cache = {
            signal: node_map[node] for signal, node in self._cache.items()
        }
        self.manager = target
        target.mark_reordered()
        return node_map

    def invalidate(self, signals: Iterable[str]) -> None:
        """Drop cached functions for signals (and their transitive
        fanouts) after a network edit."""
        dirty = set(signals)
        fanouts = self.network.fanout_map()
        stack = list(dirty)
        while stack:
            name = stack.pop()
            for reader in fanouts.get(name, ()):
                if reader not in dirty:
                    dirty.add(reader)
                    stack.append(reader)
        for name in dirty:
            self._cache.pop(name, None)
