"""Sequential logic networks: netlist data structure, BLIF/ISCAS89 I/O,
bit-parallel simulation, BDD collapsing and structural transformations."""

from repro.network.netlist import Network, Node, Latch, NODE_OPS, VARIADIC_OPS
from repro.network.blif import parse_blif, read_blif, write_blif, save_blif
from repro.network.bench import parse_bench, read_bench, write_bench, save_bench
from repro.network.simulate import (
    evaluate_combinational,
    simulate_sequence,
    random_simulation,
    outputs_equal,
)
from repro.network.bdd_build import ConeCollapser
from repro.network.check import (
    CheckResult,
    combinational_equivalent_bdd,
    combinational_equivalent_sat,
    sequential_equivalent_reachable,
)
from repro.network.odc import observability_dont_cares, signal_interval_with_odc
from repro.network.aig import Aig, from_network as network_to_aig, to_network as aig_to_network, balance as aig_balance
from repro.network.verilog import write_verilog, save_verilog
from repro.network.vcd import trace_to_vcd, save_vcd
from repro.network.transform import (
    cleanup_latches,
    remove_dead_latches,
    remove_constant_latches,
    merge_cloned_latches,
    expand_covers,
    expand_to_two_input,
    strash,
    sweep,
    instantiate_dectree,
    replace_signal_definition,
)

__all__ = [
    "Network",
    "Node",
    "Latch",
    "NODE_OPS",
    "VARIADIC_OPS",
    "parse_blif",
    "read_blif",
    "write_blif",
    "save_blif",
    "parse_bench",
    "read_bench",
    "write_bench",
    "save_bench",
    "evaluate_combinational",
    "simulate_sequence",
    "random_simulation",
    "outputs_equal",
    "ConeCollapser",
    "CheckResult",
    "combinational_equivalent_bdd",
    "combinational_equivalent_sat",
    "sequential_equivalent_reachable",
    "observability_dont_cares",
    "signal_interval_with_odc",
    "Aig",
    "network_to_aig",
    "aig_to_network",
    "aig_balance",
    "write_verilog",
    "save_verilog",
    "trace_to_vcd",
    "save_vcd",
    "cleanup_latches",
    "remove_dead_latches",
    "remove_constant_latches",
    "merge_cloned_latches",
    "expand_covers",
    "expand_to_two_input",
    "strash",
    "sweep",
    "instantiate_dectree",
    "replace_signal_definition",
]
