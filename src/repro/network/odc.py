"""Observability don't cares (ODCs).

The paper extracts *external* don't cares from unreachable states
(Section 3.5.1, following Savoj/Brayton [20]); the natural companion —
also rooted in [20] — is the observability don't care of an internal
signal: input assignments under which the signal's value cannot be seen
at any output or next-state function.  On those assignments the signal
may be re-implemented freely, widening the interval handed to
bi-decomposition beyond what unreachable states alone provide.

Computation is the textbook one: treat the signal as a free variable
``s`` (a cut point), build every sink function ``F(x, s)``, and

``ODC(x) = ∧_sinks [ F(x, s=0)  ≡  F(x, s=1) ]``.

Caveat (documented, asserted in tests): ODCs of *different* signals are
not simultaneously usable without compatibility bookkeeping; the helpers
here are for one-signal-at-a-time re-implementation, which is exactly how
Algorithm 1's loop consumes don't cares.
"""

from __future__ import annotations

from typing import Optional

from repro.bdd.manager import BDDManager, TRUE
from repro.network.bdd_build import ConeCollapser
from repro.network.netlist import Network


def observability_dont_cares(
    network: Network,
    signal: str,
    collapser: Optional[ConeCollapser] = None,
) -> tuple[int, ConeCollapser]:
    """ODC set of ``signal`` over the network's combinational sources.

    Returns ``(odc_node, collapser)``; the collapser (created fresh
    unless supplied) carries the source-variable map the node is over.
    The signal itself must be an internal node.
    """
    if signal not in network.nodes:
        raise ValueError(f"{signal!r} is not an internal node")
    if collapser is None:
        collapser = ConeCollapser(network, BDDManager(), cut_points={signal})
    elif signal not in collapser.cut_points:
        raise ValueError("collapser must declare the signal as a cut point")
    manager = collapser.manager
    cut_var = collapser.source_var(signal)
    odc = TRUE
    for sink in network.combinational_sinks():
        if sink in network.inputs or sink in network.latches:
            continue
        f = collapser.node_function(sink)
        low = manager.cofactor(f, cut_var, False)
        high = manager.cofactor(f, cut_var, True)
        odc = manager.apply_and(odc, manager.apply_xnor(low, high))
        if odc == 0:
            break
    return odc, collapser


def signal_interval_with_odc(
    network: Network,
    signal: str,
    extra_dont_cares: int = 0,
):
    """The re-implementation interval of one signal: ``[f·~dc, f+dc]``
    with ``dc = ODC(signal) | extra_dont_cares``.

    ``extra_dont_cares`` (e.g. unreachable states transferred into the
    returned collapser's manager by the caller) is OR-ed in.  Returns
    ``(interval, collapser)``.
    """
    from repro.intervals import Interval

    odc, collapser = observability_dont_cares(network, signal)
    manager = collapser.manager
    # The signal's own function, computed WITHOUT the cut (fresh
    # collapser sharing the same manager and source variables).
    inner = ConeCollapser(network, manager)
    inner._var_of = {
        name: var
        for name, var in collapser.var_of.items()
        if name != signal
    }
    f = inner.node_function(signal)
    # Sources first seen behind the cut point were allocated by the inner
    # collapser; publish them on the outer one so its variable map covers
    # the returned interval's support.
    for name, var in inner.var_of.items():
        if name not in collapser._var_of:
            collapser._var_of[name] = var
    dont_care = manager.apply_or(odc, extra_dont_cares)
    return Interval.with_dont_cares(manager, f, dont_care), collapser
