"""Structural network transformations.

Covers the paper's pre-processing ("each circuit was structurally
pre-processed to remove cloned, dead, and constant latches",
Section 3.6), cover/primitive expansions used before technology mapping,
structural hashing for sharing, and instantiation of decomposition trees
back into the network.

:func:`cleanup_latches`, :func:`sweep` and :func:`strash` are also
exposed as registered pipeline passes (``"cleanup"``, ``"sweep"``,
``"strash"``) through :mod:`repro.engine.passes`, so declarative
pipeline configs can sequence them freely.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.bidec.recursive import DecTree
from repro.logic.factoring import AndExpr, ConstExpr, Expr, Lit, OrExpr, factor
from repro.logic.sop import Cover, Cube
from repro.network.netlist import Network, Node


# ---------------------------------------------------------------------------
# Latch cleanup (Section 3.6 pre-processing)
# ---------------------------------------------------------------------------


def remove_dead_latches(network: Network) -> int:
    """Drop latches whose outputs drive nothing (transitively): a latch
    feeding only dead logic or other dead latches is dead too."""
    removed_total = 0
    while True:
        live = network.transitive_fanin(
            network.outputs
            + [
                latch.data_in
                for latch in network.latches.values()
            ]
        )
        # A latch only kept alive by its own (or other dead latches')
        # next-state logic is still dead; iterate to a fixpoint by first
        # considering only primary outputs plus live-latch data.
        live = network.transitive_fanin(network.outputs)
        changed = True
        while changed:
            changed = False
            for latch in network.latches.values():
                if latch.name in live:
                    additions = network.transitive_fanin([latch.data_in])
                    if not additions <= live:
                        live |= additions
                        changed = True
        dead = [name for name in network.latches if name not in live]
        for name in dead:
            del network.latches[name]
        removed_total += len(dead)
        if not dead:
            break
    network.prune_dangling()
    return removed_total


def remove_constant_latches(network: Network) -> int:
    """Replace latches whose next state is a constant equal to their init
    value by that constant."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for name, latch in list(network.latches.items()):
            driver = network.nodes.get(latch.data_in)
            if driver is None or driver.op not in ("const0", "const1"):
                continue
            value = driver.op == "const1"
            if value != latch.init:
                continue
            del network.latches[name]
            network.add_node(name, "const1" if value else "const0")
            removed += 1
            changed = True
    return removed


def merge_cloned_latches(network: Network) -> int:
    """Merge latches with identical data input and init value, rewiring
    readers of the clones to the representative."""
    groups: dict[tuple[str, bool], list[str]] = {}
    for name, latch in network.latches.items():
        groups.setdefault((latch.data_in, latch.init), []).append(name)
    protected = set(network.outputs)
    replacements: dict[str, str] = {}
    for clones in groups.values():
        # Prefer keeping a latch that is itself a primary output.
        keeper = min(clones, key=lambda n: (n not in protected, n))
        for clone in clones:
            if clone == keeper:
                continue
            del network.latches[clone]
            if clone in protected:
                # Preserve the output name as an alias of the keeper.
                network.add_node(clone, "buf", [keeper])
            else:
                replacements[clone] = keeper
    if replacements:
        _rewire(network, replacements)
    return len(replacements)


def _rewire(network: Network, replacements: Mapping[str, str]) -> None:
    for node in network.nodes.values():
        node.fanins = [replacements.get(f, f) for f in node.fanins]
    network.outputs = [replacements.get(o, o) for o in network.outputs]
    for latch in network.latches.values():
        latch.data_in = replacements.get(latch.data_in, latch.data_in)


def cleanup_latches(network: Network) -> dict[str, int]:
    """Full Section 3.6 pre-processing pass; returns removal counts."""
    stats = {
        "constant": remove_constant_latches(network),
        "cloned": merge_cloned_latches(network),
        "dead": remove_dead_latches(network),
    }
    return stats


# ---------------------------------------------------------------------------
# Expansion and sharing
# ---------------------------------------------------------------------------


def expand_covers(network: Network) -> int:
    """Replace every cover node by AND/OR/NOT primitives (covers become
    a two-level network); returns the number of covers expanded."""
    expanded = 0
    for name in list(network.nodes):
        node = network.nodes[name]
        if node.op != "cover":
            continue
        assert node.cover is not None
        expression = factor(node.cover)
        position_to_signal = {i: f for i, f in enumerate(node.fanins)}
        replacement = _instantiate_expr(network, expression, position_to_signal, name)
        network.replace_node(name, replacement)
        expanded += 1
    return expanded


def _instantiate_expr(
    network: Network,
    expression: Expr,
    leaf_signal: Mapping[int, str],
    target: str,
) -> Node:
    """Build gates for an expression tree; the root is returned as a Node
    to be installed under ``target``'s name, the rest get fresh names."""

    def emit(expr: Expr) -> str:
        node = build(expr)
        name = network.fresh_name(f"{target}_f")
        network.nodes[name] = node
        node.name = name
        return name

    def build(expr: Expr) -> Node:
        if isinstance(expr, ConstExpr):
            return Node("", "const1" if expr.value else "const0")
        if isinstance(expr, Lit):
            signal = leaf_signal[expr.var]
            if expr.polarity:
                return Node("", "buf", [signal])
            return Node("", "not", [signal])
        op = "and" if isinstance(expr, AndExpr) else "or"
        fanins = [emit(term) for term in expr.terms]
        return Node("", op, fanins)

    return build(expression)


def expand_to_two_input(network: Network) -> None:
    """Decompose every variadic AND/OR/XOR into balanced trees of 2-input
    gates (the subject-graph form the technology mapper consumes)."""
    expand_covers(network)
    for name in list(network.nodes):
        node = network.nodes[name]
        if node.op not in ("and", "or", "xor") or len(node.fanins) <= 2:
            continue
        fanins = list(node.fanins)
        while len(fanins) > 2:
            next_level = []
            for i in range(0, len(fanins) - 1, 2):
                pair_name = network.fresh_name(f"{name}_t")
                network.add_node(pair_name, node.op, [fanins[i], fanins[i + 1]])
                next_level.append(pair_name)
            if len(fanins) % 2:
                next_level.append(fanins[-1])
            fanins = next_level
        network.replace_node(name, Node(name, node.op, fanins))


def strash(network: Network) -> int:
    """Structural hashing: merge nodes with identical op and fanins
    (commutative ops sorted), propagating merges forward; returns the
    number of nodes merged away."""
    merged = 0
    protected = set(network.outputs)
    replacements: dict[str, str] = {}
    table: dict[tuple, str] = {}
    for name in network.topological_order():
        node = network.nodes[name]
        fanins = [replacements.get(f, f) for f in node.fanins]
        if node.op in ("and", "or", "xor"):
            key_fanins = tuple(sorted(fanins))
        else:
            key_fanins = tuple(fanins)
        if node.op == "cover":
            assert node.cover is not None
            key = (node.op, key_fanins, tuple(c.literals for c in node.cover))
        else:
            key = (node.op, key_fanins)
        node.fanins = fanins
        existing = table.get(key)
        if existing is not None and existing != name:
            if name in protected:
                # Keep the output name alive as an alias of the keeper.
                network.replace_node(name, Node(name, "buf", [existing]))
            else:
                replacements[name] = existing
                del network.nodes[name]
            merged += 1
        else:
            table[key] = name
    if replacements:
        _rewire(network, replacements)
    return merged


def sweep(network: Network) -> int:
    """Propagate buffers and constants through the network and drop
    dangling logic; returns the number of nodes removed."""
    before = len(network.nodes)
    protected = set(network.outputs)
    changed = True
    while changed:
        changed = False
        replacements: dict[str, str] = {}
        for name in network.topological_order():
            node = network.nodes.get(name)
            if node is None:
                continue
            node.fanins = [replacements.get(f, f) for f in node.fanins]
            if name in protected:
                continue
            if node.op == "buf":
                replacements[name] = node.fanins[0]
                del network.nodes[name]
                changed = True
            elif node.op in ("and", "or") and len(node.fanins) == 1:
                replacements[name] = node.fanins[0]
                del network.nodes[name]
                changed = True
        if replacements:
            _rewire(network, replacements)
    network.prune_dangling()
    return before - len(network.nodes)


# ---------------------------------------------------------------------------
# Decomposition-tree instantiation (Algorithm 1's rebuild step)
# ---------------------------------------------------------------------------


def instantiate_dectree(
    network: Network,
    tree: DecTree,
    var_to_signal: Mapping[int, str],
    target: str,
    share_table: Optional[dict[int, str]] = None,
) -> str:
    """Materialise a decomposition tree as network gates driving a fresh
    signal (returned).  ``var_to_signal`` maps the BDD variables of the
    tree's covers to network signal names.

    ``share_table`` (BDD node -> existing signal) enables the Figure 3.2
    logic-sharing optimisation: subtrees whose function already exists in
    the network are replaced by a reference to the existing signal.  The
    table is extended with the signals created here so later calls share
    them.
    """
    if share_table is not None:
        existing = share_table.get(tree.function)
        if existing is not None:
            return existing
    if tree.op == "leaf":
        assert tree.cover is not None
        signal = _instantiate_cover(network, tree.cover, var_to_signal, target)
    else:
        left = instantiate_dectree(
            network, tree.children[0], var_to_signal, target, share_table
        )
        right = instantiate_dectree(
            network, tree.children[1], var_to_signal, target, share_table
        )
        signal = network.fresh_name(f"{target}_g")
        network.add_node(signal, tree.op, [left, right])
    if share_table is not None:
        share_table[tree.function] = signal
    return signal


def _instantiate_cover(
    network: Network,
    cover: Cover,
    var_to_signal: Mapping[int, str],
    target: str,
) -> str:
    variables = sorted({var for cube in cover for var, _ in cube.literals})
    position_of = {var: i for i, var in enumerate(variables)}
    local = Cover(
        [
            Cube.from_dict(
                {position_of[var]: pol for var, pol in cube.literals}
            )
            for cube in cover
        ]
    )
    signal = network.fresh_name(f"{target}_c")
    network.add_node(
        signal, "cover", [var_to_signal[var] for var in variables], local
    )
    return signal


def replace_signal_definition(
    network: Network, signal: str, new_driver: str
) -> None:
    """Redefine an existing node ``signal`` as a buffer of ``new_driver``
    (callers run :func:`sweep` afterwards to squeeze the buffer out)."""
    network.replace_node(signal, Node(signal, "buf", [new_driver]))
