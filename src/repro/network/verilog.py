"""Structural Verilog writer.

Emits a synthesisable gate-level module from a :class:`Network`: inputs,
outputs, one ``always @(posedge clk)`` block for the latches, and
``assign`` statements for the logic (covers become sum-of-products
expressions).  A ``clk`` port is added when the design is sequential.

This is a writer only — round-tripping Verilog is out of scope; BLIF is
the library's native interchange format.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.network.netlist import Network

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-escape a signal name if it is not a plain identifier."""
    if _ID_RE.match(name) and name not in _KEYWORDS:
        return name
    return f"\\{name} "


_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "begin", "end", "posedge", "negedge", "if", "else", "initial",
}


def _expression(network: Network, name: str) -> str:
    node = network.nodes[name]
    operands = [_escape(f) for f in node.fanins]
    if node.op == "and":
        return " & ".join(operands)
    if node.op == "or":
        return " | ".join(operands)
    if node.op == "xor":
        return " ^ ".join(operands)
    if node.op == "not":
        return f"~{operands[0]}"
    if node.op == "buf":
        return operands[0]
    if node.op == "const0":
        return "1'b0"
    if node.op == "const1":
        return "1'b1"
    # cover: sum of products over fanin positions.
    assert node.cover is not None
    if not node.cover.cubes:
        return "1'b0"
    terms = []
    for cube in node.cover:
        if len(cube) == 0:
            return "1'b1"
        literals = [
            operands[pos] if polarity else f"~{operands[pos]}"
            for pos, polarity in cube.literals
        ]
        terms.append(
            "(" + " & ".join(literals) + ")" if len(literals) > 1 else literals[0]
        )
    return " | ".join(terms)


def write_verilog(network: Network, module_name: str | None = None) -> str:
    """Serialise a network as a structural Verilog module."""
    module = module_name or network.name or "top"
    sequential = bool(network.latches)
    ports = []
    if sequential:
        ports.append("clk")
    ports += [_escape(n) for n in network.inputs]
    # Outputs may alias internal signals; emit dedicated output wires.
    output_ports = [f"po_{i}" for i in range(len(network.outputs))]
    ports += output_ports

    lines = [f"module {_escape(module)} ("]
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    if sequential:
        lines.append("  input clk;")
    for name in network.inputs:
        lines.append(f"  input {_escape(name)};")
    for port in output_ports:
        lines.append(f"  output {port};")
    for name in network.latches:
        lines.append(f"  reg {_escape(name)};")
    for name in network.nodes:
        lines.append(f"  wire {_escape(name)};")
    lines.append("")
    for name in network.topological_order():
        lines.append(
            f"  assign {_escape(name)} = {_expression(network, name)};"
        )
    lines.append("")
    for index, signal in enumerate(network.outputs):
        lines.append(f"  assign po_{index} = {_escape(signal)};")
    if sequential:
        lines.append("")
        lines.append("  always @(posedge clk) begin")
        for latch in network.latches.values():
            lines.append(
                f"    {_escape(latch.name)} <= {_escape(latch.data_in)};"
            )
        lines.append("  end")
        lines.append("")
        lines.append("  initial begin")
        for latch in network.latches.values():
            value = "1'b1" if latch.init else "1'b0"
            lines.append(f"    {_escape(latch.name)} = {value};")
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(
    network: Network, path: str | Path, module_name: str | None = None
) -> None:
    """Write a network to a Verilog file."""
    Path(path).write_text(write_verilog(network, module_name))
