"""ISCAS89 ``.bench`` reader and writer.

The format of the s-series sequential benchmarks: ``INPUT(a)``,
``OUTPUT(z)`` and ``g = OP(f1, f2, ...)`` lines with operators AND, OR,
NAND, NOR, XOR, XNOR, NOT, BUFF and DFF.  Inverted gates are expanded
into a primitive plus a NOT node on read and re-fused on write when
possible.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator

from repro.network.netlist import Network

_GATE_RE = re.compile(r"^\s*([\w.\[\]$]+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w.\[\]$]+)\s*\)\s*$")


def parse_bench(text: str) -> Network:
    """Parse ``.bench`` text into a :class:`Network`."""
    network = Network()
    gate_lines: list[tuple[str, str, list[str]]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, name = io_match.groups()
            if kind == "INPUT":
                network.add_input(name)
            else:
                network.add_output(name)
            continue
        gate_match = _GATE_RE.match(line)
        if not gate_match:
            raise ValueError(f"unparseable bench line: {raw!r}")
        name, op, operand_text = gate_match.groups()
        operands = [token.strip() for token in operand_text.split(",") if token.strip()]
        gate_lines.append((name, op.upper(), operands))
    # Latches first so node fanins referencing latch outputs resolve.
    for name, op, operands in gate_lines:
        if op == "DFF":
            network.add_latch(name, operands[0], init=False)
    for name, op, operands in gate_lines:
        if op == "DFF":
            continue
        _add_gate(network, name, op, operands)
    return network


def _add_gate(network: Network, name: str, op: str, operands: list[str]) -> None:
    if op in ("AND", "OR", "XOR"):
        network.add_node(name, op.lower(), operands)
    elif op in ("NAND", "NOR", "XNOR"):
        inner = network.fresh_name(f"{name}_pos")
        network.add_node(inner, op[1:].lower() if op != "XNOR" else "xor", operands)
        network.add_node(name, "not", [inner])
    elif op == "NOT":
        network.add_node(name, "not", operands)
    elif op in ("BUFF", "BUF"):
        network.add_node(name, "buf", operands)
    elif op == "CONST0":
        network.add_node(name, "const0")
    elif op == "CONST1":
        network.add_node(name, "const1")
    else:
        raise ValueError(f"unknown bench gate type {op!r}")


def read_bench(path: str | Path) -> Network:
    """Read a ``.bench`` file from disk."""
    return parse_bench(Path(path).read_text())


def _gate_line(network: Network, name: str) -> Iterator[str]:
    node = network.nodes[name]
    operands = ", ".join(node.fanins)
    if node.op in ("and", "or", "xor"):
        yield f"{name} = {node.op.upper()}({operands})"
    elif node.op == "not":
        yield f"{name} = NOT({operands})"
    elif node.op == "buf":
        yield f"{name} = BUFF({operands})"
    elif node.op in ("const0", "const1"):
        yield f"{name} = {node.op.upper()}()"
    else:  # cover — not expressible; expand via BLIF instead.
        raise ValueError(
            f"cover node {name!r} cannot be written to .bench; "
            "expand covers first (see network.transform.expand_covers)"
        )


def write_bench(network: Network) -> str:
    """Serialise a network as ``.bench`` text."""
    lines = [f"# {network.name}"]
    for name in network.inputs:
        lines.append(f"INPUT({name})")
    for name in network.outputs:
        lines.append(f"OUTPUT({name})")
    for latch in network.latches.values():
        lines.append(f"{latch.name} = DFF({latch.data_in})")
    for name in network.topological_order():
        lines.extend(_gate_line(network, name))
    return "\n".join(lines) + "\n"


def save_bench(network: Network, path: str | Path) -> None:
    """Write a network to a ``.bench`` file."""
    Path(path).write_text(write_bench(network))
