"""Equivalence checking of networks.

Two engines over the same miter formulation:

* BDD-based combinational equivalence (collapse both cones, compare
  canonical nodes) — exact, fast on collapsible logic;
* SAT-based combinational equivalence (Tseitin-encode both cones, assert
  the XOR of the outputs, decide) — robust when BDDs blow up.

Sequential equivalence is handled in the restricted form the paper's
flow needs: the optimised network may differ from the original only in
unreachable states, so a *combinational* check of all outputs and
next-state functions constrained to a reachable over-approximation
certifies the transformation (the conservative sequential-synthesis
correctness argument of Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.bdd.manager import BDDManager, FALSE
from repro.network.bdd_build import ConeCollapser
from repro.network.netlist import Network
from repro.sat.cnf import CnfBuilder, encode_cone
from repro.sat.solver import Solver


@dataclass
class CheckResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    #: Signal on which the first difference was found (None if equal).
    failing_signal: Optional[str] = None
    #: A distinguishing input assignment for the failing signal.
    counterexample: Optional[dict[str, bool]] = None


def _matched_interfaces(left: Network, right: Network) -> list[str]:
    if left.inputs != right.inputs:
        raise ValueError("primary inputs differ")
    if left.outputs != right.outputs:
        raise ValueError("primary outputs differ")
    if set(left.latches) != set(right.latches):
        raise ValueError("latch sets differ")
    for name in left.latches:
        if left.latches[name].init != right.latches[name].init:
            raise ValueError(f"latch {name!r} init values differ")
    # Signals to compare: outputs and next-state functions, keyed by the
    # latch name for the latter.
    return list(left.outputs) + list(left.latches)


def combinational_equivalent_bdd(
    left: Network,
    right: Network,
    care_set: Optional[int] = None,
    care_manager: Optional[BDDManager] = None,
    care_vars: Optional[Mapping[str, int]] = None,
) -> CheckResult:
    """BDD equivalence of every output and next-state function.

    With ``care_set`` (a BDD over latch variables of ``care_manager``,
    mapped by ``care_vars``), functions need only agree on the care
    states — the check the synthesis flow uses with the reachable
    over-approximation as care set.
    """
    signals = _matched_interfaces(left, right)
    manager = BDDManager()
    left_collapser = ConeCollapser(left, manager)
    # Share source variables by name between the two collapsers.
    for name in left.combinational_sources():
        left_collapser.source_var(name)
    right_collapser = ConeCollapser(right, manager)
    right_collapser._var_of = dict(left_collapser.var_of)  # shared sources

    care = None
    if care_set is not None:
        if care_manager is None or care_vars is None:
            raise ValueError("care_set needs its manager and variable map")
        from repro.bdd.compose import transfer

        mapping = {
            var: left_collapser.source_var(name)
            for name, var in care_vars.items()
        }
        care = transfer(care_manager, care_set, manager, mapping)

    for signal in signals:
        left_sink = left.latches[signal].data_in if signal in left.latches else signal
        right_sink = (
            right.latches[signal].data_in if signal in right.latches else signal
        )
        f = left_collapser.node_function(left_sink)
        g = right_collapser.node_function(right_sink)
        difference = manager.apply_xor(f, g)
        if care is not None:
            difference = manager.apply_and(difference, care)
        if difference != FALSE:
            from repro.bdd.count import pick_one

            model = pick_one(manager, difference)
            assert model is not None
            names = {var: name for name, var in left_collapser.var_of.items()}
            counterexample = {
                names[var]: value for var, value in model.items() if var in names
            }
            return CheckResult(False, signal, counterexample)
    return CheckResult(True)


def combinational_equivalent_sat(left: Network, right: Network) -> CheckResult:
    """SAT miter equivalence of every output and next-state function."""
    signals = _matched_interfaces(left, right)
    builder = CnfBuilder()
    sources = {
        name: builder.new_var() for name in left.combinational_sources()
    }
    left_literals: dict[str, int] = {}
    right_literals: dict[str, int] = {}
    for signal in signals:
        left_sink = left.latches[signal].data_in if signal in left.latches else signal
        right_sink = (
            right.latches[signal].data_in if signal in right.latches else signal
        )
        left_literals[signal] = encode_cone(left, left_sink, sources, builder)
        right_literals[signal] = encode_cone(right, right_sink, sources, builder)
    solver = builder.to_solver()
    for signal in signals:
        miter = CnfBuilder()
        miter.num_vars = solver.num_vars
        xor_out = miter.new_var()
        miter.add_xor2(xor_out, left_literals[signal], right_literals[signal])
        for clause in miter.clauses:
            solver.add_clause(clause)
        solver.num_vars = miter.num_vars
        if solver.solve([xor_out]):
            model = solver.model()
            counterexample = {
                name: model[literal] for name, literal in sources.items()
            }
            return CheckResult(False, signal, counterexample)
    return CheckResult(True)


def sequential_equivalent_reachable(
    left: Network,
    right: Network,
    max_partition_size: int = 24,
) -> CheckResult:
    """The conservative sequential check of the paper's setting: outputs
    and next-state functions must agree on (an over-approximation of) the
    reachable states of the *original* design ``left``.

    Sound for certifying Algorithm 1's output: if the check passes, no
    reachable behaviour changed (the over-approximate care set can only
    make the check stricter).
    """
    from repro.reach.dontcare import DontCareManager

    dcm = DontCareManager(left, max_partition_size=max_partition_size)
    care_manager = BDDManager()
    care_vars = {name: care_manager.new_var(name) for name in left.latches}
    unreachable = dcm.unreachable_for(
        set(left.latches), care_manager, care_vars
    )
    care = care_manager.negate(unreachable)
    return combinational_equivalent_bdd(
        left, right, care_set=care, care_manager=care_manager, care_vars=care_vars
    )
