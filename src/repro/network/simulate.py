"""Bit-parallel simulation of sequential networks.

Signal values are Python ints used as bit vectors: bit ``i`` of a value is
the signal's value in simulation slot ``i``.  This gives 64+-way parallel
simulation for free and is the equivalence-checking oracle of the test
suite and the synthesis flow's sanity checks.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Sequence

from repro.network.netlist import Network


def evaluate_combinational(
    network: Network, sources: Mapping[str, int], width: int
) -> dict[str, int]:
    """Evaluate all nodes given bit-vector values for every combinational
    source (inputs and latch outputs).  Returns values for every signal."""
    mask = (1 << width) - 1
    values: dict[str, int] = {}
    for name in network.combinational_sources():
        values[name] = sources[name] & mask
    for name in network.topological_order():
        node = network.nodes[name]
        operands = [values[fanin] for fanin in node.fanins]
        if node.op == "and":
            out = mask
            for value in operands:
                out &= value
        elif node.op == "or":
            out = 0
            for value in operands:
                out |= value
        elif node.op == "xor":
            out = 0
            for value in operands:
                out ^= value
        elif node.op == "not":
            out = ~operands[0] & mask
        elif node.op == "buf":
            out = operands[0]
        elif node.op == "const0":
            out = 0
        elif node.op == "const1":
            out = mask
        else:  # cover
            assert node.cover is not None
            out = 0
            for cube in node.cover:
                term = mask
                for position, polarity in cube.literals:
                    literal = operands[position]
                    term &= literal if polarity else ~literal & mask
                out |= term
        values[name] = out
    return values


def simulate_sequence(
    network: Network,
    input_vectors: Sequence[Mapping[str, int]],
    width: int,
    initial_state: Optional[Mapping[str, int]] = None,
) -> list[dict[str, int]]:
    """Cycle-accurate simulation over a sequence of input frames.

    Each frame maps input names to bit vectors; latches start at their
    declared init values (or ``initial_state``).  Returns the full signal
    valuation per cycle.
    """
    mask = (1 << width) - 1
    state: dict[str, int] = {}
    for name, latch in network.latches.items():
        if initial_state is not None and name in initial_state:
            state[name] = initial_state[name] & mask
        else:
            state[name] = mask if latch.init else 0
    frames: list[dict[str, int]] = []
    for frame_inputs in input_vectors:
        sources = dict(state)
        for name in network.inputs:
            sources[name] = frame_inputs[name] & mask
        values = evaluate_combinational(network, sources, width)
        frames.append(values)
        state = {
            name: values[latch.data_in]
            for name, latch in network.latches.items()
        }
    return frames


def random_simulation(
    network: Network,
    cycles: int,
    width: int = 64,
    seed: int = 0,
) -> list[dict[str, int]]:
    """Simulate with pseudo-random primary inputs (deterministic given
    ``seed``)."""
    rng = random.Random(seed)
    frames = [
        {name: rng.getrandbits(width) for name in network.inputs}
        for _ in range(cycles)
    ]
    return simulate_sequence(network, frames, width)


def outputs_equal(
    left: Network,
    right: Network,
    cycles: int = 16,
    width: int = 64,
    seed: int = 0,
) -> bool:
    """Quick sequential equivalence smoke test: identical interfaces and
    identical primary-output traces under shared random stimulus.

    A simulation check, not a proof — the synthesis tests combine it with
    BDD-based combinational equivalence on the reachable space.
    """
    if left.inputs != right.inputs or left.outputs != right.outputs:
        return False
    rng = random.Random(seed)
    frames = [
        {name: rng.getrandbits(width) for name in left.inputs}
        for _ in range(cycles)
    ]
    left_trace = simulate_sequence(left, frames, width)
    right_trace = simulate_sequence(right, frames, width)
    for l_frame, r_frame in zip(left_trace, right_trace):
        for output in left.outputs:
            if l_frame[output] != r_frame[output]:
                return False
    return True
