"""BLIF reader and writer.

Supports the subset of Berkeley BLIF used by synthesis benchmarks:
``.model/.inputs/.outputs/.latch/.names/.end``, line continuations, on-set
and off-set single-output covers, and latch init values.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.logic.sop import Cover, Cube
from repro.network.netlist import Network


def _logical_lines(text: str) -> Iterator[str]:
    """Strip comments, join ``\\`` continuations, drop blanks."""
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield (pending + line).strip()
        pending = ""
    if pending.strip():
        yield pending.strip()


def parse_blif(text: str) -> Network:
    """Parse BLIF text into a :class:`Network`."""
    network = Network()
    lines = list(_logical_lines(text))
    index = 0
    while index < len(lines):
        line = lines[index]
        index += 1
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "top"
        elif keyword == ".inputs":
            for name in tokens[1:]:
                network.add_input(name)
        elif keyword == ".outputs":
            for name in tokens[1:]:
                network.add_output(name)
        elif keyword == ".latch":
            data_in, output = tokens[1], tokens[2]
            init = False
            if tokens[3:]:
                last = tokens[-1]
                if last in ("0", "1", "2", "3"):
                    init = last == "1"
            network.add_latch(output, data_in, init)
        elif keyword == ".names":
            signals = tokens[1:]
            output = signals[-1]
            fanins = signals[:-1]
            rows: list[tuple[str, str]] = []
            while index < len(lines) and not lines[index].startswith("."):
                row = lines[index].split()
                index += 1
                if len(fanins) == 0:
                    rows.append(("", row[0]))
                else:
                    rows.append((row[0], row[1]))
            _add_names_node(network, output, fanins, rows)
        elif keyword == ".end":
            break
        else:
            raise ValueError(f"unsupported BLIF construct: {keyword}")
    return network


def _add_names_node(
    network: Network,
    output: str,
    fanins: list[str],
    rows: list[tuple[str, str]],
) -> None:
    if not fanins:
        # Constant: a single "1" row is const1, no rows is const0.
        value = any(out_value == "1" for _, out_value in rows)
        network.add_node(output, "const1" if value else "const0")
        return
    out_values = {out_value for _, out_value in rows}
    if not rows:
        network.add_node(output, "const0")
        return
    if len(out_values) > 1:
        raise ValueError(f"mixed on/off-set cover for {output!r}")
    cubes = []
    for pattern, _ in rows:
        if len(pattern) != len(fanins):
            raise ValueError(f"cube arity mismatch in {output!r}")
        literals = {
            position: char == "1"
            for position, char in enumerate(pattern)
            if char != "-"
        }
        cubes.append(Cube.from_dict(literals))
    cover = Cover(cubes)
    if out_values == {"1"}:
        network.add_node(output, "cover", fanins, cover)
    else:
        # Off-set cover: output = NOT(OR of cubes).
        shadow = network.fresh_name(f"{output}_off")
        network.add_node(shadow, "cover", fanins, cover)
        network.add_node(output, "not", [shadow])


def read_blif(path: str | Path) -> Network:
    """Read a BLIF file from disk."""
    return parse_blif(Path(path).read_text())


def _cover_rows(cover: Cover, arity: int) -> Iterator[str]:
    for cube in cover:
        literals = cube.as_dict()
        pattern = "".join(
            "1" if literals.get(i) is True else "0" if literals.get(i) is False else "-"
            for i in range(arity)
        )
        yield f"{pattern} 1"


def _node_lines(network: Network, name: str) -> Iterator[str]:
    node = network.nodes[name]
    arity = len(node.fanins)
    header = ".names " + " ".join(node.fanins + [name])
    if node.op == "cover":
        assert node.cover is not None
        yield header
        yield from _cover_rows(node.cover, arity)
    elif node.op == "and":
        yield header
        yield "1" * arity + " 1"
    elif node.op == "or":
        yield header
        for i in range(arity):
            yield "-" * i + "1" + "-" * (arity - i - 1) + " 1"
    elif node.op == "xor":
        yield header
        for minterm in range(1 << arity):
            if bin(minterm).count("1") % 2 == 1:
                yield (
                    "".join("1" if (minterm >> i) & 1 else "0" for i in range(arity))
                    + " 1"
                )
    elif node.op == "not":
        yield header
        yield "0 1"
    elif node.op == "buf":
        yield header
        yield "1 1"
    elif node.op == "const1":
        yield f".names {name}"
        yield "1"
    else:  # const0
        yield f".names {name}"


def write_blif(network: Network) -> str:
    """Serialise a network as BLIF text."""
    lines = [f".model {network.name}"]
    if network.inputs:
        lines.append(".inputs " + " ".join(network.inputs))
    if network.outputs:
        lines.append(".outputs " + " ".join(network.outputs))
    for latch in network.latches.values():
        lines.append(
            f".latch {latch.data_in} {latch.name} {1 if latch.init else 0}"
        )
    for name in network.topological_order():
        lines.extend(_node_lines(network, name))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_blif(network: Network, path: str | Path) -> None:
    """Write a network to a BLIF file."""
    Path(path).write_text(write_blif(network))
