"""Sequential logic networks.

A :class:`Network` is a named directed acyclic graph of logic nodes over
primary inputs, with latches providing sequential state: a latch's output
is a combinational source and its data input a combinational sink, so the
combinational core is always acyclic.

Node operators cover the simple primitives the synthesis flow emits
(``and``/``or``/``xor``/``not``/``buf``/``const0``/``const1``), plus
``cover`` nodes carrying an SOP over their fanins (the BLIF ``.names``
representation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.logic.sop import Cover, Cube

#: Operators with arbitrary fanin count.
VARIADIC_OPS = {"and", "or", "xor"}
#: All legal node operators.
NODE_OPS = VARIADIC_OPS | {"not", "buf", "const0", "const1", "cover"}


@dataclass
class Node:
    """A combinational node: ``name = op(fanins)``.

    For ``op == "cover"`` the on-set is ``cover``, whose cube literals are
    *positions* into ``fanins`` (not global variable ids).
    """

    name: str
    op: str
    fanins: list[str] = field(default_factory=list)
    cover: Optional[Cover] = None

    def __post_init__(self) -> None:
        if self.op not in NODE_OPS:
            raise ValueError(f"unknown node op {self.op!r}")
        if self.op in ("const0", "const1") and self.fanins:
            raise ValueError("constants take no fanins")
        if self.op in ("not", "buf") and len(self.fanins) != 1:
            raise ValueError(f"{self.op} takes exactly one fanin")
        if self.op == "cover" and self.cover is None:
            raise ValueError("cover nodes need a cover")


@dataclass
class Latch:
    """A D-type latch: output signal ``name``, next-state signal
    ``data_in``, reset value ``init``."""

    name: str
    data_in: str
    init: bool = False


class Network:
    """A sequential netlist with named signals.

    Signals come in three kinds: primary inputs, latch outputs, and node
    outputs.  Primary outputs are references to any signal.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.latches: dict[str, Latch] = {}
        self.nodes: dict[str, Node] = {}

    # -- construction ----------------------------------------------------

    def add_input(self, name: str) -> str:
        self._check_fresh(name)
        self.inputs.append(name)
        return name

    def add_output(self, signal: str) -> None:
        self.outputs.append(signal)

    def add_latch(self, name: str, data_in: str, init: bool = False) -> str:
        self._check_fresh(name)
        self.latches[name] = Latch(name, data_in, init)
        return name

    def add_node(
        self,
        name: str,
        op: str,
        fanins: Sequence[str] = (),
        cover: Optional[Cover] = None,
    ) -> str:
        self._check_fresh(name)
        self.nodes[name] = Node(name, op, list(fanins), cover)
        return name

    def _check_fresh(self, name: str) -> None:
        if name in self.nodes or name in self.latches or name in self.inputs:
            raise ValueError(f"signal {name!r} already defined")

    def fresh_name(self, prefix: str = "n") -> str:
        """An unused signal name with the given prefix."""
        index = len(self.nodes)
        while True:
            candidate = f"{prefix}{index}"
            if (
                candidate not in self.nodes
                and candidate not in self.latches
                and candidate not in self.inputs
            ):
                return candidate
            index += 1

    # -- structure -------------------------------------------------------

    def is_signal(self, name: str) -> bool:
        return name in self.nodes or name in self.latches or name in self.inputs

    def combinational_sources(self) -> list[str]:
        """Primary inputs plus latch outputs — the sources of the
        combinational core."""
        return self.inputs + list(self.latches)

    def combinational_sinks(self) -> list[str]:
        """Primary-output signals plus latch data inputs (deduplicated,
        order-preserving)."""
        seen: set[str] = set()
        sinks: list[str] = []
        for signal in self.outputs + [l.data_in for l in self.latches.values()]:
            if signal not in seen:
                seen.add(signal)
                sinks.append(signal)
        return sinks

    def fanins(self, signal: str) -> list[str]:
        node = self.nodes.get(signal)
        return list(node.fanins) if node else []

    def fanout_map(self) -> dict[str, set[str]]:
        """Map from each signal to the set of node names reading it."""
        fanouts: dict[str, set[str]] = {}
        for node in self.nodes.values():
            for fanin in node.fanins:
                fanouts.setdefault(fanin, set()).add(node.name)
        return fanouts

    def topological_order(self) -> list[str]:
        """Node names in fanin-before-fanout order.

        Raises ``ValueError`` on a combinational cycle or an undefined
        fanin.
        """
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done
        for root in self.nodes:
            if root in state:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            while stack:
                name, child_index = stack.pop()
                if name not in self.nodes or state.get(name) == 1:
                    continue
                if child_index == 0:
                    if state.get(name) == 0:
                        raise ValueError(f"combinational cycle through {name!r}")
                    state[name] = 0
                node = self.nodes[name]
                advanced = False
                for i in range(child_index, len(node.fanins)):
                    fanin = node.fanins[i]
                    if not self.is_signal(fanin):
                        raise ValueError(f"undefined fanin {fanin!r} of {name!r}")
                    if fanin in self.nodes and state.get(fanin) != 1:
                        stack.append((name, i + 1))
                        stack.append((fanin, 0))
                        advanced = True
                        break
                if not advanced:
                    state[name] = 1
                    order.append(name)
        return order

    def transitive_fanin(self, signals: Iterable[str]) -> set[str]:
        """All signals (nodes, latches, inputs) in the cone of the given
        signals, including the signals themselves."""
        cone: set[str] = set()
        stack = list(signals)
        while stack:
            name = stack.pop()
            if name in cone:
                continue
            cone.add(name)
            node = self.nodes.get(name)
            if node:
                stack.extend(node.fanins)
        return cone

    def cone_inputs(self, signal: str) -> list[str]:
        """Sources (inputs/latches) feeding the cone of ``signal``,
        sorted for determinism."""
        cone = self.transitive_fanin([signal])
        return sorted(
            name for name in cone if name in self.latches or name in self.inputs
        )

    def latch_support(self, signal: str) -> set[str]:
        """The present-state portion of a signal's structural support —
        the paper's ``supp_ps(f)`` (Section 3.5.1)."""
        return {name for name in self.cone_inputs(signal) if name in self.latches}

    # -- statistics -------------------------------------------------------

    def num_gates(self) -> int:
        """Number of logic nodes (constants and buffers excluded)."""
        return sum(
            1 for node in self.nodes.values() if node.op not in ("const0", "const1", "buf")
        )

    def literal_count(self) -> int:
        """Technology-independent area: SOP literals for cover nodes,
        fanin count for primitive gates, 1 for an inverter."""
        total = 0
        for node in self.nodes.values():
            if node.op == "cover":
                assert node.cover is not None
                total += node.cover.literal_count()
            elif node.op in VARIADIC_OPS:
                total += len(node.fanins)
            elif node.op == "not":
                total += 1
        return total

    def and_inv_count(self) -> int:
        """Size of the network's and/inv expansion: each k-input
        AND/OR contributes ``k-1`` two-input ANDs, each XOR ``3(k-1)``
        (the Table 3.2 "AND" column metric)."""
        total = 0
        for node in self.nodes.values():
            arity = len(node.fanins)
            if node.op in ("and", "or"):
                total += max(0, arity - 1)
            elif node.op == "xor":
                total += 3 * max(0, arity - 1)
            elif node.op == "cover":
                assert node.cover is not None
                for cube in node.cover:
                    total += max(0, len(cube) - 1)
                total += max(0, len(node.cover.cubes) - 1)
        return total

    def stats(self) -> dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "latches": len(self.latches),
            "nodes": len(self.nodes),
            "literals": self.literal_count(),
            "and_inv": self.and_inv_count(),
        }

    # -- editing -----------------------------------------------------------

    def remove_node(self, name: str) -> None:
        del self.nodes[name]

    def replace_node(self, name: str, node: Node) -> None:
        """Swap in a new definition for an existing node name."""
        if name not in self.nodes:
            raise KeyError(name)
        node.name = name
        self.nodes[name] = node

    def prune_dangling(self) -> int:
        """Remove nodes not in the transitive fanin of any sink; returns
        the number removed."""
        live = self.transitive_fanin(self.combinational_sinks())
        dead = [name for name in self.nodes if name not in live]
        for name in dead:
            del self.nodes[name]
        return len(dead)

    def copy(self) -> "Network":
        """Deep copy (covers are shared; they are immutable in practice)."""
        duplicate = Network(self.name)
        duplicate.inputs = list(self.inputs)
        duplicate.outputs = list(self.outputs)
        duplicate.latches = {
            name: Latch(latch.name, latch.data_in, latch.init)
            for name, latch in self.latches.items()
        }
        duplicate.nodes = {
            name: Node(node.name, node.op, list(node.fanins), node.cover)
            for name, node in self.nodes.items()
        }
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<Network {self.name!r} i/o={s['inputs']}/{s['outputs']} "
            f"latches={s['latches']} nodes={s['nodes']}>"
        )
