"""And-Inverter Graphs (AIGs).

The paper reports circuit sizes "in its and/inv expansion" (Table 3.2's
AND column); this module provides the real thing: a structurally hashed
AIG with complemented edges, conversion from/to :class:`Network`,
bit-parallel simulation, level computation and tree balancing.

Literal convention: literal = 2*node + complement bit; node 0 is the
constant, so literal 0 = FALSE and literal 1 = TRUE.  Node indices 1..n
are inputs, the rest AND nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.network.netlist import Network

FALSE_LIT = 0
TRUE_LIT = 1


def lit_not(literal: int) -> int:
    """Complement a literal."""
    return literal ^ 1


def lit_node(literal: int) -> int:
    return literal >> 1


def lit_compl(literal: int) -> bool:
    return bool(literal & 1)


class Aig:
    """A combinational AIG with structural hashing."""

    def __init__(self) -> None:
        self.num_inputs = 0
        self.input_names: list[str] = []
        # AND nodes: parallel arrays of fanin literals; index 0 unused
        # padding so that and-node k lives at node index
        # 1 + num_inputs + k.  Inputs must be created before ANDs.
        self._left: list[int] = []
        self._right: list[int] = []
        self._strash: dict[tuple[int, int], int] = {}
        self.outputs: dict[str, int] = {}
        self._frozen_inputs = False

    # -- construction ----------------------------------------------------

    def add_input(self, name: Optional[str] = None) -> int:
        if self._frozen_inputs:
            raise ValueError("inputs must be created before AND nodes")
        self.num_inputs += 1
        self.input_names.append(name or f"i{self.num_inputs - 1}")
        return 2 * self.num_inputs  # node index == num_inputs

    def _first_and_node(self) -> int:
        return 1 + self.num_inputs

    def and_(self, a: int, b: int) -> int:
        """Structurally hashed AND with constant/trivial folding."""
        if a > b:
            a, b = b, a
        if a == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE_LIT
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            self._frozen_inputs = True
            node = self._first_and_node() + len(self._left)
            self._left.append(a)
            self._right.append(b)
            self._strash[key] = node
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(
            self.and_(a, lit_not(b)), self.and_(lit_not(a), b)
        )

    def mux(self, select: int, hi: int, lo: int) -> int:
        return self.or_(self.and_(select, hi), self.and_(lit_not(select), lo))

    def add_output(self, name: str, literal: int) -> None:
        self.outputs[name] = literal

    # -- structure ---------------------------------------------------------

    @property
    def num_ands(self) -> int:
        """Total AND nodes created (the Table 3.2 AND metric over the
        whole graph)."""
        return len(self._left)

    def fanins(self, node: int) -> tuple[int, int]:
        index = node - self._first_and_node()
        return self._left[index], self._right[index]

    def is_and(self, node: int) -> bool:
        return node >= self._first_and_node()

    def cone_ands(self, literals: Sequence[int]) -> int:
        """Number of AND nodes in the transitive fanin of the given
        literals (dangling nodes excluded)."""
        seen: set[int] = set()
        stack = [lit_node(l) for l in literals]
        count = 0
        while stack:
            node = stack.pop()
            if node in seen or not self.is_and(node):
                continue
            seen.add(node)
            count += 1
            left, right = self.fanins(node)
            stack.append(lit_node(left))
            stack.append(lit_node(right))
        return count

    def levels(self) -> dict[int, int]:
        """AND-level of every node (inputs/constant at level 0)."""
        level: dict[int, int] = {0: 0}
        for i in range(1, self._first_and_node()):
            level[i] = 0
        for index in range(len(self._left)):
            node = self._first_and_node() + index
            left, right = self._left[index], self._right[index]
            level[node] = 1 + max(level[lit_node(left)], level[lit_node(right)])
        return level

    def depth(self) -> int:
        """Maximum output level."""
        if not self.outputs:
            return 0
        level = self.levels()
        return max(level[lit_node(l)] for l in self.outputs.values())

    # -- evaluation ----------------------------------------------------------

    def simulate(self, input_values: Mapping[str, int], width: int) -> dict[str, int]:
        """Bit-parallel evaluation; returns output name -> bit vector."""
        mask = (1 << width) - 1
        values: list[int] = [0] * self._first_and_node()
        for i, name in enumerate(self.input_names):
            values[1 + i] = input_values[name] & mask

        def literal_value(literal: int) -> int:
            value = values[lit_node(literal)]
            return (~value & mask) if lit_compl(literal) else value

        for index in range(len(self._left)):
            values.append(
                literal_value(self._left[index]) & literal_value(self._right[index])
            )
        # constant node: values[0] = 0 -> literal 1 = ~0 = mask. Correct.
        return {
            name: literal_value(literal)
            for name, literal in self.outputs.items()
        }


def from_network(network: Network) -> tuple[Aig, dict[str, int]]:
    """Convert the combinational core of a network to an AIG.

    Latch outputs become AIG inputs; returns the AIG plus a map from
    every network signal to its literal.  Outputs registered on the AIG
    are the network's combinational sinks.
    """
    aig = Aig()
    literal_of: dict[str, int] = {}
    for name in network.combinational_sources():
        literal_of[name] = aig.add_input(name)
    for name in network.topological_order():
        node = network.nodes[name]
        operands = [literal_of[f] for f in node.fanins]
        if node.op == "and":
            literal = TRUE_LIT
            for operand in operands:
                literal = aig.and_(literal, operand)
        elif node.op == "or":
            literal = FALSE_LIT
            for operand in operands:
                literal = aig.or_(literal, operand)
        elif node.op == "xor":
            literal = FALSE_LIT
            for operand in operands:
                literal = aig.xor_(literal, operand)
        elif node.op == "not":
            literal = lit_not(operands[0])
        elif node.op == "buf":
            literal = operands[0]
        elif node.op == "const0":
            literal = FALSE_LIT
        elif node.op == "const1":
            literal = TRUE_LIT
        else:  # cover
            assert node.cover is not None
            literal = FALSE_LIT
            for cube in node.cover:
                term = TRUE_LIT
                for position, polarity in cube.literals:
                    operand = operands[position]
                    term = aig.and_(
                        term, operand if polarity else lit_not(operand)
                    )
                literal = aig.or_(literal, term)
        literal_of[name] = literal
    for sink in network.combinational_sinks():
        aig.add_output(sink, literal_of[sink])
    return aig, literal_of


def to_network(aig: Aig, name: str = "from_aig") -> Network:
    """Expand an AIG into a Network of 2-input ANDs and NOTs."""
    network = Network(name)
    signal_of: dict[int, str] = {}
    for input_name in aig.input_names:
        network.add_input(input_name)
    for i in range(aig.num_inputs):
        signal_of[1 + i] = aig.input_names[i]
    const_needed = any(
        lit_node(l) == 0 for l in aig.outputs.values()
    )
    if const_needed:
        network.add_node("aig_const0", "const0")
        signal_of[0] = "aig_const0"

    negations: dict[int, str] = {}

    def literal_signal(literal: int) -> str:
        node = lit_node(literal)
        if node == 0 and node not in signal_of:
            network.add_node("aig_const0", "const0")
            signal_of[0] = "aig_const0"
        base = signal_of[node]
        if not lit_compl(literal):
            return base
        cached = negations.get(literal)
        if cached is None:
            cached = network.add_node(
                network.fresh_name(f"{base}_n"), "not", [base]
            )
            negations[literal] = cached
        return cached

    for index in range(aig.num_ands):
        node = aig._first_and_node() + index
        left, right = aig.fanins(node)
        signal_of[node] = network.add_node(
            network.fresh_name("aand"),
            "and",
            [literal_signal(left), literal_signal(right)],
        )
    for out_name, literal in aig.outputs.items():
        network.add_node(out_name, "buf", [literal_signal(literal)])
        network.add_output(out_name)
    return network


def balance(aig: Aig) -> Aig:
    """Rebuild with depth-balanced AND trees (ABC's ``balance`` in
    miniature): each maximal same-polarity conjunction chain is flattened
    and re-associated, combining the shallowest operands first."""
    import heapq

    balanced = Aig()
    for name in aig.input_names:
        balanced.add_input(name)
    # Map OLD positive literal -> NEW literal (complements follow by ^1).
    lit_map: dict[int, int] = {0: 0}
    for i in range(1, aig._first_and_node()):
        lit_map[2 * i] = 2 * i
    new_levels: dict[int, int] = {}

    def mapped(old_literal: int) -> int:
        return lit_map[old_literal & ~1] ^ (old_literal & 1)

    def level_of(new_literal: int) -> int:
        return new_levels.get(lit_node(new_literal), 0)

    def gather(old_literal: int, leaves: list[int]) -> None:
        """Flatten a positive-polarity AND chain of the old graph."""
        node = lit_node(old_literal)
        if lit_compl(old_literal) or not aig.is_and(node):
            leaves.append(old_literal)
            return
        left, right = aig.fanins(node)
        gather(left, leaves)
        gather(right, leaves)

    for index in range(aig.num_ands):
        node = aig._first_and_node() + index
        leaves: list[int] = []
        gather(2 * node, leaves)
        heap = [
            (level_of(mapped(leaf)), i, mapped(leaf))
            for i, leaf in enumerate(leaves)
        ]
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            l1, _, a = heapq.heappop(heap)
            l2, _, b = heapq.heappop(heap)
            combined = balanced.and_(a, b)
            if balanced.is_and(lit_node(combined)):
                new_levels.setdefault(lit_node(combined), max(l1, l2) + 1)
            heapq.heappush(
                heap, (level_of(combined), counter, combined)
            )
            counter += 1
        lit_map[2 * node] = heap[0][2] if heap else TRUE_LIT
    for name, literal in aig.outputs.items():
        balanced.add_output(name, mapped(literal))
    return balanced
